// Triggered and on-demand profile capture (docs/OBSERVABILITY.md,
// "Profiling"). When the flight recorder retains a trace for cause —
// slow, error, or degraded — record() fires the profcap capturer: a
// bounded CPU-profile window plus goroutine/heap snapshots taken while
// the condition is still hot, persisted through the artifact store and
// linked from the trace's /debug/traces/{id} view. POST /debug/profile
// is the operator path: the same capture, synchronously, on demand.
package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ccdac/internal/obs/profcap"
	"ccdac/internal/store"
)

// profileKinds orders the artifacts of one capture.
var profileKinds = []string{"cpu", "goroutine", "heap"}

// profileIndexKey is the store index key for one artifact of a
// capture: profile/<traceID>/<kind>.
func profileIndexKey(traceID, kind string) string {
	return "profile/" + traceID + "/" + kind
}

// persistCapture queues a finished capture's artifacts for durable
// storage, keyed by the trace that triggered it. Runs on the
// capturer's goroutine (triggered path) or the request goroutine
// (manual path); either way the write-behind queue keeps disk I/O off
// the serving path.
func (s *Server) persistCapture(c profcap.Capture) {
	if s.persist == nil || c.Err != nil || c.TraceID == "" {
		return
	}
	meta := fmt.Sprintf(`{"reason":%q,"trace_id":%q,"window_seconds":%g}`,
		c.Reason, c.TraceID, c.Duration.Seconds())
	for _, kind := range profileKinds {
		blob := c.Artifact(kind)
		if len(blob) == 0 {
			continue
		}
		s.persist.enqueue(persistJob{
			blobKey:  profileIndexKey(c.TraceID, kind),
			blob:     blob,
			blobMeta: meta,
		})
	}
}

// profileArtifacts returns the store hashes of a trace's persisted
// profile artifacts (kind → hash), nil when none are indexed.
func (s *Server) profileArtifacts(traceID string) map[string]string {
	if s.store == nil {
		return nil
	}
	var out map[string]string
	for _, kind := range profileKinds {
		if hash, ok := s.store.LookupIndex(profileIndexKey(traceID, kind)); ok {
			if out == nil {
				out = map[string]string{}
			}
			out[kind] = hash
		}
	}
	return out
}

// profileResponse is the JSON body of POST /debug/profile.
type profileResponse struct {
	Status          string  `json:"status"`
	Reason          string  `json:"reason"`
	CaptureID       string  `json:"capture_id"`
	DurationSeconds float64 `json:"duration_seconds"`
	// Artifacts maps kind → content hash; with a store configured each
	// is retrievable via GET /v1/artifacts/{hash} once the write-behind
	// queue drains.
	Artifacts map[string]string `json:"artifacts,omitempty"`
	Bytes     map[string]int64  `json:"bytes,omitempty"`
	Dropped   []string          `json:"dropped,omitempty"`
	Persisted bool              `json:"persisted"`
	Warning   string            `json:"warning,omitempty"`
}

// maxProfileSeconds caps windowed profile collection one second under
// the graceful-drain deadline: an in-flight profile must finish before
// a SIGTERM drain gives up on it.
func (s *Server) maxProfileSeconds() int {
	max := int(s.opts.DrainTimeout/time.Second) - 1
	if max < 1 {
		max = 1
	}
	return max
}

// clampSeconds rewrites an excessive pprof `seconds` parameter down to
// maxProfileSeconds before delegating to the net/http/pprof handler.
func (s *Server) clampSeconds(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		max := s.maxProfileSeconds()
		q := r.URL.Query()
		if sec, err := strconv.Atoi(q.Get("seconds")); err == nil && sec > max {
			q.Set("seconds", strconv.Itoa(max))
			r = r.Clone(r.Context())
			r.URL.RawQuery = q.Encode()
			w.Header().Set("X-Seconds-Clamped", strconv.Itoa(max))
		}
		h.ServeHTTP(w, r)
	})
}

// handleProfile runs one on-demand capture session:
//
//	curl -X POST 'http://localhost:8080/debug/profile?seconds=2'
//
// The capture runs synchronously on this request (the route is exempt
// from the per-request timeout; seconds is clamped below the drain
// deadline). It shares the one-capture-at-a-time gate with triggered
// captures — a concurrent capture means 409, never queueing — but
// ignores the cooldown: an explicit operator request wins over the
// storm damper.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if s.profcap == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: profile capture disabled"))
		return
	}
	window := s.profcap.Options().Window
	if raw := r.URL.Query().Get("seconds"); raw != "" {
		sec, err := strconv.Atoi(raw)
		if err != nil || sec < 1 {
			s.writeError(w, r, http.StatusBadRequest,
				fmt.Errorf("serve: bad seconds %q (want a positive integer)", raw))
			return
		}
		if max := s.maxProfileSeconds(); sec > max {
			sec = max
			w.Header().Set("X-Seconds-Clamped", strconv.Itoa(max))
		}
		window = time.Duration(sec) * time.Second
	}
	captureID := RequestID(r.Context())
	capd, err := s.profcap.CaptureSync(r.Context(), "manual", captureID, window)
	if err != nil {
		if capd.Err == nil {
			// CaptureSync failed before the window opened: a capture is
			// already in flight.
			s.writeError(w, r, http.StatusConflict, err)
			return
		}
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	resp := profileResponse{
		Status:          "captured",
		Reason:          capd.Reason,
		CaptureID:       captureID,
		DurationSeconds: capd.Duration.Seconds(),
		Dropped:         capd.Dropped,
		Persisted:       s.persist != nil,
	}
	for _, kind := range profileKinds {
		blob := capd.Artifact(kind)
		if len(blob) == 0 {
			continue
		}
		if resp.Artifacts == nil {
			resp.Artifacts = map[string]string{}
			resp.Bytes = map[string]int64{}
		}
		// The hash is content-derived, so it can be reported before the
		// write-behind queue persists the blob.
		resp.Artifacts[kind] = store.Hash(blob)
		resp.Bytes[kind] = int64(len(blob))
	}
	if s.persist == nil {
		resp.Warning = "no artifact store configured (-store-dir): profiles are returned but not retrievable via /v1/artifacts"
	} else {
		s.persistCapture(capd)
	}
	s.log.Info("profile captured", "capture_id", captureID,
		"window", capd.Duration.String(), "persisted", resp.Persisted)
	writeJSON(w, http.StatusOK, resp)
}

// numericSweep lazily re-runs the numeric-health checks when the last
// sweep is older than NumericInterval. Driven from health and metrics
// reads instead of a background ticker: the checks cost microseconds,
// scrapes provide the cadence, and an idle daemon spends nothing.
func (s *Server) numericSweep() {
	if s.watchdog == nil {
		return
	}
	s.watchdogMu.Lock()
	defer s.watchdogMu.Unlock()
	if time.Since(s.lastSweep) < s.opts.NumericInterval && !s.lastSweep.IsZero() {
		return
	}
	s.watchdog.RunOnce()
	s.lastSweep = time.Now()
}
