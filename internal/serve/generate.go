package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ccdac"
	"ccdac/internal/obs"
)

// GenerateRequest is the JSON body of POST /v1/generate, mirroring
// ccdac.Config field for field (tracing is managed server-side and is
// not a client knob). Unknown fields are rejected with 400.
type GenerateRequest struct {
	Bits             int    `json:"bits"`
	Style            string `json:"style,omitempty"`
	CoreBits         int    `json:"core_bits,omitempty"`
	BlockCells       int    `json:"block_cells,omitempty"`
	MaxParallel      int    `json:"max_parallel,omitempty"`
	AnnealSeed       int64  `json:"anneal_seed,omitempty"`
	AnnealMoves      int    `json:"anneal_moves,omitempty"`
	ThetaSteps       int    `json:"theta_steps,omitempty"`
	SkipNonlinearity bool   `json:"skip_nonlinearity,omitempty"`
	TechNode         string `json:"tech_node,omitempty"`
	// Workers asks for an analysis parallelism budget below the
	// server's per-request cap (Options.Workers); larger requests are
	// clamped to the cap so one client cannot oversubscribe the host.
	// 0 takes the server default, negative forces serial analysis.
	Workers int `json:"workers,omitempty"`
	// BestBC sweeps the block-chessboard structure grid and returns the
	// best candidate (GenerateBestBC) instead of one fixed structure.
	BestBC bool `json:"best_bc,omitempty"`
}

func (g GenerateRequest) config() ccdac.Config {
	return ccdac.Config{
		Bits:             g.Bits,
		Style:            ccdac.Style(g.Style),
		CoreBits:         g.CoreBits,
		BlockCells:       g.BlockCells,
		MaxParallel:      g.MaxParallel,
		AnnealSeed:       g.AnnealSeed,
		AnnealMoves:      g.AnnealMoves,
		ThetaSteps:       g.ThetaSteps,
		SkipNonlinearity: g.SkipNonlinearity,
		TechNode:         g.TechNode,
	}
}

// GenerateResponse is the JSON body of a successful generate request:
// the run's metrics summary, its degradation warnings, and the
// request-private counter snapshot that was merged into the global
// registry (so clients — and the zero-dropped-merges test — can
// reconcile per-request numbers against /metrics totals).
type GenerateResponse struct {
	RequestID      string           `json:"request_id"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Metrics        ccdac.Metrics    `json:"metrics"`
	Warnings       []string         `json:"warnings,omitempty"`
	Counters       map[string]int64 `json:"counters,omitempty"`
}

// handleGenerate runs one generation under a request-private trace and
// folds its metrics into the process registry — on success, on
// pipeline failure, and on cancellation alike, so partial effort is
// never invisible to /metrics.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: decoding request body: %w", err))
		return
	}
	cfg := req.config()
	// Per-request worker budget: the server's cap, unless the request
	// asked for less (a negative ask means serial analysis).
	cfg.Workers = s.opts.Workers
	if req.Workers != 0 && req.Workers < cfg.Workers {
		cfg.Workers = req.Workers
	}

	tr := obs.New(obs.Options{PprofLabels: true})
	ctx := obs.WithTrace(r.Context(), tr)
	ctx, root := obs.StartSpan(ctx, "serve.generate")
	root.SetAttr("request_id", RequestID(r.Context()))
	if ri := requestInfo(r.Context()); ri != nil {
		ri.spanID.Store(root.ID())
	}

	start := time.Now()
	var res *ccdac.Result
	var err error
	if req.BestBC {
		res, _, err = ccdac.GenerateBestBCContext(ctx, cfg)
	} else {
		res, err = ccdac.GenerateContext(ctx, cfg)
	}
	elapsed := time.Since(start)

	// Close out the trace and merge before responding: a canceled or
	// failed run still contributes its partial counters (runs started,
	// stages completed, fallbacks taken) to the global registry.
	root.Fail(err)
	root.End()
	tr.Finish()
	snap := tr.Registry().Snapshot()
	s.reg.Merge(snap)
	if s.onTrace != nil {
		s.onTrace(tr)
	}

	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, GenerateResponse{
		RequestID:      RequestID(r.Context()),
		ElapsedSeconds: elapsed.Seconds(),
		Metrics:        res.Metrics,
		Warnings:       res.Warnings,
		Counters:       snap.Counters,
	})
}

// statusOf maps a pipeline error to its HTTP status: invalid configs
// are the client's fault, deadline hits are gateway timeouts, client
// cancellations use nginx's 499 convention, everything else is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ccdac.ErrConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusInternalServerError
	}
}
