package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ccdac"
)

// GenerateRequest is the JSON body of POST /v1/generate, mirroring
// ccdac.Config field for field (tracing is managed server-side and is
// not a client knob). Unknown fields are rejected with 400.
type GenerateRequest struct {
	Bits             int    `json:"bits"`
	Style            string `json:"style,omitempty"`
	CoreBits         int    `json:"core_bits,omitempty"`
	BlockCells       int    `json:"block_cells,omitempty"`
	MaxParallel      int    `json:"max_parallel,omitempty"`
	AnnealSeed       int64  `json:"anneal_seed,omitempty"`
	AnnealMoves      int    `json:"anneal_moves,omitempty"`
	ThetaSteps       int    `json:"theta_steps,omitempty"`
	SkipNonlinearity bool   `json:"skip_nonlinearity,omitempty"`
	TechNode         string `json:"tech_node,omitempty"`
	// Workers asks for an analysis parallelism budget below the
	// server's per-request cap (Options.Workers); larger requests are
	// clamped to the cap so one client cannot oversubscribe the host.
	// 0 takes the server default, negative forces serial analysis.
	Workers int `json:"workers,omitempty"`
	// BestBC sweeps the block-chessboard structure grid and returns the
	// best candidate (GenerateBestBC) instead of one fixed structure.
	BestBC bool `json:"best_bc,omitempty"`
	// Cache selects the result-cache policy for this request: "" or
	// "default" uses the server cache and singleflight; "bypass" forces
	// a full recomputation (no cache read, no flight sharing, no stage
	// memoization) — the knob for "I changed the binary, show me fresh
	// numbers". Anything else is a 400.
	Cache string `json:"cache,omitempty"`
	// FFT selects the covariance engine: "" or "auto" (default) uses
	// the structured FFT path when the layout geometry allows, "off"
	// forces the dense path — the A/B audit knob. Anything else is a
	// 400. The two engines agree only to documented tolerance, so the
	// directive is part of the result-cache key.
	FFT string `json:"fft,omitempty"`
}

func (g GenerateRequest) config() ccdac.Config {
	return ccdac.Config{
		Bits:             g.Bits,
		Style:            ccdac.Style(g.Style),
		CoreBits:         g.CoreBits,
		BlockCells:       g.BlockCells,
		MaxParallel:      g.MaxParallel,
		AnnealSeed:       g.AnnealSeed,
		AnnealMoves:      g.AnnealMoves,
		ThetaSteps:       g.ThetaSteps,
		SkipNonlinearity: g.SkipNonlinearity,
		TechNode:         g.TechNode,
		FFT:              g.FFT,
	}
}

// GenerateResponse is the JSON body of a successful generate request:
// the run's metrics summary, its degradation warnings, and the
// request-private counter snapshot that was merged into the global
// registry (so clients — and the zero-dropped-merges test — can
// reconcile per-request numbers against /metrics totals).
type GenerateResponse struct {
	RequestID      string  `json:"request_id"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// CacheStatus reports how the result was produced: "cold" (this
	// request ran the generation), "hit" (served from the result
	// cache), "shared" (joined another request's in-flight generation),
	// "bypass" (cache:"bypass" forced a recomputation), or "" (server
	// cache disabled).
	CacheStatus string           `json:"cache_status,omitempty"`
	Metrics     ccdac.Metrics    `json:"metrics"`
	Warnings    []string         `json:"warnings,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
}

// validCacheDirective reports whether a request's cache field is one of
// the accepted values.
func validCacheDirective(c string) bool {
	return c == "" || c == "default" || c == "bypass"
}

// validFFTDirective reports whether a request's fft field is one of the
// accepted covariance-engine selectors.
func validFFTDirective(f string) bool {
	return f == "" || f == "auto" || f == "off"
}

// handleGenerate decodes one request and routes it through the cache
// and singleflight layers (see cache.go); the generation itself runs
// under a request-private trace whose metrics fold into the process
// registry.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: decoding request body: %w", err))
		return
	}
	if !validCacheDirective(req.Cache) {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("serve: unknown cache directive %q (want \"default\" or \"bypass\")", req.Cache))
		return
	}
	if !validFFTDirective(req.FFT) {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("serve: unknown fft directive %q (want \"auto\" or \"off\")", req.FFT))
		return
	}
	cfg := req.config()
	// Per-request worker budget: the server's cap, unless the request
	// asked for less (a negative ask means serial analysis).
	cfg.Workers = s.opts.Workers
	if req.Workers != 0 && req.Workers < cfg.Workers {
		cfg.Workers = req.Workers
	}

	start := time.Now()
	out, err := s.generate(r.Context(), req, cfg, requestInfo(r.Context()))
	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusOK, GenerateResponse{
		RequestID:      RequestID(r.Context()),
		ElapsedSeconds: time.Since(start).Seconds(),
		CacheStatus:    out.status,
		Metrics:        out.metrics,
		Warnings:       s.withStoreWarning(out.warnings),
		Counters:       out.counters,
	})
}

// withStoreWarning appends the structural degradation warning while
// the artifact store is running memory-only — the same pattern as the
// pipeline's CG→Cholesky fallback: the request succeeds, and the
// response says what was given up (here, durability). The input slice
// is never mutated (it may be shared with the result cache).
func (s *Server) withStoreWarning(warnings []string) []string {
	if s.store == nil {
		return warnings
	}
	degraded, derr := s.store.Degraded()
	if !degraded {
		return warnings
	}
	msg := "store: degraded to memory-only operation (results are not persisted)"
	if derr != nil {
		msg += ": " + derr.Error()
	}
	out := make([]string, 0, len(warnings)+1)
	out = append(out, warnings...)
	return append(out, msg)
}

// statusOf maps a pipeline error to its HTTP status: invalid configs
// are the client's fault, deadline hits are gateway timeouts, client
// cancellations use nginx's 499 convention, everything else is a 500.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ccdac.ErrConfig):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusInternalServerError
	}
}
