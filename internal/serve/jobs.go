// Async job tier endpoints: POST /v1/jobs submits work to the bounded
// priority queue of internal/jobs, GET /v1/jobs/{id} polls it, DELETE
// cancels it, and GET /v1/jobs/{id}/events streams the job's live span
// events over SSE. Job records persist through the write-behind
// persister and checkpoints persist synchronously, so a killed daemon
// restarts with its job history intact and resumes interrupted
// Monte-Carlo runs from the last checkpoint (see recoverJobs).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"time"

	"ccdac/internal/jobs"
	"ccdac/internal/obs"
	"ccdac/internal/store"
)

// jobIndexKey/jobCkKey/jobManifestKey are the artifact-store index
// keys of a job's latest record, its latest checkpoint, and the list
// of known job IDs (the index hashes its keys, so recovery needs an
// explicit manifest to enumerate them).
func jobIndexKey(id string) string { return "job/" + id }
func jobCkKey(id string) string    { return "jobck/" + id }

const jobManifestKey = "jobs/manifest"

// handleJobSubmit accepts a job spec, reserves queue capacity, and
// answers 202 with the queued record — or 429 with queue depth and an
// honest Retry-After when the bounded queue is full.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: decoding job spec: %w", err))
		return
	}
	job, err := s.jobs.Submit(spec)
	if err != nil {
		var oe *jobs.OverflowError
		if errors.As(err, &oe) {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(oe.RetryAfter)))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{
				Error:      err.Error(),
				RequestID:  RequestID(r.Context()),
				QueueDepth: oe.Depth,
			})
			return
		}
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Cancel(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams one job's live span events (its traces are
// tagged with the job ID on the shared bus) until the job reaches a
// terminal state, then sends a final job_done event carrying the full
// record and closes. Unlike /v1/events, a trace_finish does not end
// the stream: one job emits several traces (prefix + tail, or one per
// checkpointed block run).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, fmt.Errorf("serve: streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: no job %q", id))
		return
	}
	sub := s.bus.Subscribe(id, s.opts.EventBuffer)
	defer sub.Close()

	done := make(chan jobs.Job, 1)
	go func() {
		if j, err := s.jobs.Wait(r.Context(), id); err == nil {
			done <- j
		}
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	writeEvent := func(ev obs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
		case j := <-done:
			// Drain events already buffered before announcing the end.
			for {
				select {
				case ev := <-sub.Events():
					if !writeEvent(ev) {
						return
					}
					continue
				default:
				}
				break
			}
			if data, err := json.Marshal(j); err == nil {
				fmt.Fprintf(w, "event: job_done\ndata: %s\n\n", data)
				fl.Flush()
			}
			return
		}
	}
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, at least 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// jobStore adapts the server's artifact store to jobs.Persist.
type jobStore struct{ s *Server }

// SaveJob persists the job record write-behind: the request path and
// the worker never block on disk, and losing the last milliseconds of
// record churn in a crash is fine — recovery resynthesizes state from
// the spec and the last checkpoint.
func (p *jobStore) SaveJob(j jobs.Job) {
	p.s.noteJobID(j.ID)
	data, err := json.Marshal(j)
	if err != nil {
		return
	}
	var meta string
	if j.State.Terminal() {
		// Terminal records join the provenance chain: the final result
		// is tied to the spec that produced it, like cached generates.
		if cfg, err := json.Marshal(j.Spec); err == nil {
			meta = string(cfg)
		}
	}
	p.s.persist.enqueue(persistJob{blobKey: jobIndexKey(j.ID), blob: data, blobMeta: meta})
}

// SaveCheckpoint persists synchronously — the worker blocks until the
// checkpoint is durable, because the resume contract depends on it. A
// degraded (memory-only) store cannot promise durability, so the job
// proceeds checkpoint-less rather than failing outright.
func (p *jobStore) SaveCheckpoint(j jobs.Job, ck jobs.Checkpoint) error {
	st := p.s.store
	if degraded, _ := st.Degraded(); degraded {
		return nil
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	hash, err := st.Put(data)
	if err != nil {
		return err
	}
	if err := st.SetIndex(jobCkKey(j.ID), hash); err != nil {
		return err
	}
	cfg, _ := json.Marshal(j.Spec)
	_, _ = st.AppendProvenance(store.ProvenanceRecord{
		Key:        jobCkKey(j.ID),
		Artifact:   hash,
		ConfigJSON: string(cfg),
		Seed:       j.Spec.Seed,
		GoVersion:  runtime.Version(),
		CodeHash:   codeHash(),
	})
	return nil
}

// noteJobID keeps the durable job-ID manifest current. The store index
// hashes its keys, so without this list a restarted daemon could not
// enumerate its jobs.
func (s *Server) noteJobID(id string) {
	s.jobIDMu.Lock()
	if s.jobIDs == nil {
		s.jobIDs = make(map[string]bool)
	}
	if s.jobIDs[id] {
		s.jobIDMu.Unlock()
		return
	}
	s.jobIDs[id] = true
	ids := make([]string, 0, len(s.jobIDs))
	for jid := range s.jobIDs {
		ids = append(ids, jid)
	}
	s.jobIDMu.Unlock()
	sort.Strings(ids)
	data, err := json.Marshal(ids)
	if err != nil {
		return
	}
	s.persist.enqueue(persistJob{blobKey: jobManifestKey, blob: data})
}

// recoverJobs reloads persisted job records at boot: terminal jobs
// become queryable history, interrupted ones re-enqueue and resume
// from their last checkpoint — the other half of the crash-safety
// contract (SIGKILL mid-run, restart, identical final output).
func (s *Server) recoverJobs() {
	hash, ok := s.store.LookupIndex(jobManifestKey)
	if !ok {
		return
	}
	blob, err := s.store.Get(hash)
	if err != nil {
		s.log.Warn("job manifest unreadable, starting empty", "err", err)
		return
	}
	var ids []string
	if err := json.Unmarshal(blob, &ids); err != nil {
		s.log.Warn("job manifest corrupt, starting empty", "err", err)
		return
	}
	s.jobIDMu.Lock()
	s.jobIDs = make(map[string]bool, len(ids))
	for _, id := range ids {
		s.jobIDs[id] = true
	}
	s.jobIDMu.Unlock()
	restored, resumed := 0, 0
	for _, id := range ids {
		jh, ok := s.store.LookupIndex(jobIndexKey(id))
		if !ok {
			continue
		}
		jb, err := s.store.Get(jh)
		if err != nil {
			continue
		}
		var j jobs.Job
		if err := json.Unmarshal(jb, &j); err != nil || j.ID == "" {
			continue
		}
		var ck *jobs.Checkpoint
		if ch, ok := s.store.LookupIndex(jobCkKey(id)); ok {
			if cb, err := s.store.Get(ch); err == nil {
				var c jobs.Checkpoint
				if err := json.Unmarshal(cb, &c); err == nil && c.JobID == id {
					ck = &c
				}
			}
		}
		if !j.State.Terminal() {
			resumed++
		}
		s.jobs.Restore(j, ck)
		restored++
	}
	if restored > 0 {
		s.log.Info("job records recovered", "restored", restored, "resumed", resumed)
	}
}
