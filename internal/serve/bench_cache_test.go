package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/core"
	"ccdac/internal/linalg"
	"ccdac/internal/memo"
	"ccdac/internal/sweep"
)

// benchCacheReport is the schema of BENCH_cache.json (`make
// bench-cache`): the three caching claims of docs/PERFORMANCE.md plus
// the solver allocation numbers, each measured, not asserted from
// folklore.
type benchCacheReport struct {
	// Serve result cache: one cold 10-bit generate vs the same request
	// answered from the cache.
	ServeColdSeconds float64 `json:"serve_cold_seconds"`
	ServeWarmSeconds float64 `json:"serve_warm_seconds"`
	ServeSpeedup     float64 `json:"serve_speedup"`
	// Stage memoization under a 5-factor sensitivity sweep: identical
	// binary, knob-disabled vs knob-enabled.
	SweepFactors     int     `json:"sweep_factors"`
	SweepColdSeconds float64 `json:"sweep_cold_seconds"`
	SweepMemoSeconds float64 `json:"sweep_memo_seconds"`
	SweepSpeedup     float64 `json:"sweep_speedup"`
	SweepMemoHits    int64   `json:"sweep_memo_hits"`
	// Singleflight: N concurrent identical requests vs generations paid.
	BatchClients     int     `json:"batch_clients"`
	BatchGenerations int64   `json:"batch_generations"`
	BatchDedupFactor float64 `json:"batch_dedup_factor"`
	// Pooled-scratch CG solver (satellite: alloc reduction).
	CGNsPerOp     int64 `json:"cg_ns_per_op"`
	CGAllocsPerOp int64 `json:"cg_allocs_per_op"`
	CGBytesPerOp  int64 `json:"cg_bytes_per_op"`
}

// TestBenchCache is the harness behind `make bench-cache`, gated on
// BENCH_CACHE_OUT. CI runs it as a smoke test asserting the speedups
// exceed 1 and the dedup factor equals the client count; the committed
// BENCH_cache.json comes from an uncontended local run where the
// acceptance thresholds (serve >= 10x, sweep >= 2x) hold comfortably.
func TestBenchCache(t *testing.T) {
	out := os.Getenv("BENCH_CACHE_OUT")
	if out == "" {
		t.Skip("set BENCH_CACHE_OUT=<file> to write the cache benchmark report")
	}
	var rep benchCacheReport

	// --- Serve result cache: cold vs warm 10-bit generate. ---
	srv := New(Options{MaxInFlight: 8, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	memo.PurgeAll()
	body := `{"bits":10,"max_parallel":2}`
	post := func() GenerateResponse {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var gr GenerateResponse
		if err := json.Unmarshal(data, &gr); err != nil {
			t.Fatal(err)
		}
		return gr
	}
	start := time.Now()
	cold := post()
	rep.ServeColdSeconds = time.Since(start).Seconds()
	if cold.CacheStatus != "cold" {
		t.Fatalf("first request cache_status = %q, want cold", cold.CacheStatus)
	}
	start = time.Now()
	warm := post()
	rep.ServeWarmSeconds = time.Since(start).Seconds()
	if warm.CacheStatus != "hit" {
		t.Fatalf("second request cache_status = %q, want hit", warm.CacheStatus)
	}
	rep.ServeSpeedup = rep.ServeColdSeconds / rep.ServeWarmSeconds
	if rep.ServeSpeedup <= 1 {
		t.Errorf("serve warm-hit speedup = %.2fx, want > 1", rep.ServeSpeedup)
	}

	// --- Stage memoization under a sensitivity sweep. ---
	// The gradient knob rescales mismatch statistics only: placement,
	// routing, extraction and the geometry-keyed covariance distances
	// are identical across factors, so the memoized sweep recomputes
	// only the final analysis per point. Same binary, knob off vs on.
	factors := []float64{0.5, 0.75, 1, 1.5, 2}
	rep.SweepFactors = len(factors)
	cfg := core.Config{Bits: 8, MaxParallel: 2}
	start = time.Now()
	coldPts, err := sweep.SensitivityContext(context.Background(), cfg, sweep.KnobGradient, factors, true)
	if err != nil {
		t.Fatal(err)
	}
	rep.SweepColdSeconds = time.Since(start).Seconds()

	memo.PurgeAll()
	memoCfg := cfg
	memoCfg.Memo = true
	if _, err := sweep.SensitivityContext(context.Background(), memoCfg, sweep.KnobGradient, factors[:1], true); err != nil {
		t.Fatal(err) // prime: the first factor pays the cold cost once
	}
	hitsBefore := memoHits()
	start = time.Now()
	memoPts, err := sweep.SensitivityContext(context.Background(), memoCfg, sweep.KnobGradient, factors, true)
	if err != nil {
		t.Fatal(err)
	}
	rep.SweepMemoSeconds = time.Since(start).Seconds()
	rep.SweepMemoHits = memoHits() - hitsBefore
	rep.SweepSpeedup = rep.SweepColdSeconds / rep.SweepMemoSeconds
	if rep.SweepSpeedup <= 1 {
		t.Errorf("memoized sweep speedup = %.2fx, want > 1", rep.SweepSpeedup)
	}
	if rep.SweepMemoHits == 0 {
		t.Error("memoized sweep recorded no stage-cache hits")
	}
	// Correctness: the memoized sweep must reproduce the cold sweep.
	for i := range coldPts {
		if coldPts[i] != memoPts[i] {
			t.Errorf("sweep point %d differs under memoization: %+v vs %+v", i, coldPts[i], memoPts[i])
		}
	}

	// --- Singleflight dedup: N concurrent identical requests. ---
	const clients = 8
	rep.BatchClients = clients
	dedupBody := `{"bits":9,"max_parallel":2,"theta_steps":64,"cache":"default"}`
	runsBefore := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil)
	startCh := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-startCh
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(dedupBody))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(startCh)
	wg.Wait()
	rep.BatchGenerations = srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil) - runsBefore
	if rep.BatchGenerations < 1 {
		t.Fatalf("dedup run recorded %d generations", rep.BatchGenerations)
	}
	rep.BatchDedupFactor = float64(clients) / float64(rep.BatchGenerations)
	if rep.BatchGenerations != 1 {
		t.Errorf("%d concurrent identical requests paid %d generations, want 1", clients, rep.BatchGenerations)
	}

	// --- CG solver allocations (pooled scratch vectors). ---
	br := testing.Benchmark(func(b *testing.B) {
		const n = 256
		s := linalg.NewSparse(n)
		for i := 0; i < n; i++ {
			s.Add(i, i, 1e-3)
		}
		for i := 0; i+1 < n; i++ {
			s.AddSym(i, i+1, -1)
			s.Add(i, i, 1)
			s.Add(i+1, i+1, 1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = float64(i%7) + 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.SolveCGIter(rhs, 1e-12, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.CGNsPerOp = br.NsPerOp()
	rep.CGAllocsPerOp = br.AllocsPerOp()
	rep.CGBytesPerOp = br.AllocedBytesPerOp()
	// One allocation per solve: the returned solution vector. The five
	// scratch vectors (preconditioner, residual, z, p, Ap) are pooled.
	if rep.CGAllocsPerOp > 2 {
		t.Errorf("CG solve allocates %d objects/op, want <= 2 (pooled scratch)", rep.CGAllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serve %.0fx, sweep %.1fx (%d hits), dedup %d->%d, CG %d allocs/op -> %s",
		rep.ServeSpeedup, rep.SweepSpeedup, rep.SweepMemoHits,
		rep.BatchClients, rep.BatchGenerations, rep.CGAllocsPerOp, out)
}

// memoHits sums hit counts across every registered stage cache.
func memoHits() int64 {
	var n int64
	for _, st := range memo.Snapshot() {
		n += st.Hits
	}
	return n
}
