package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions parameterizes one load run against a live daemon.
type LoadOptions struct {
	// URL is the full generate endpoint, e.g.
	// "http://127.0.0.1:8080/v1/generate".
	URL string
	// Body is the JSON request posted by every client.
	Body []byte
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// Requests is the total request count shared across clients
	// (default 100).
	Requests int
	// Timeout bounds each individual request (default 2m).
	Timeout time.Duration
}

// LoadReport is the outcome of one load run: throughput and the
// latency distribution of successful requests.
type LoadReport struct {
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	OK                int     `json:"ok"`
	Shed              int     `json:"shed"`
	Errors            int     `json:"errors"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	RequestsPerSecond float64 `json:"requests_per_second"`
	P50Seconds        float64 `json:"p50_seconds"`
	P95Seconds        float64 `json:"p95_seconds"`
	P99Seconds        float64 `json:"p99_seconds"`
	MaxSeconds        float64 `json:"max_seconds"`
}

// RunLoad drives the generate endpoint with Clients concurrent workers
// until Requests requests have been issued, then reports throughput
// and p50/p95/p99 latency over the successful responses. 429 sheds are
// counted separately (they are the daemon doing its job under
// overload, not failures); any other non-200 or transport error counts
// as an error. RunLoad stops early when ctx is canceled.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.URL == "" {
		return LoadReport{}, fmt.Errorf("serve: load URL must be set")
	}
	if opts.Clients <= 0 {
		opts.Clients = 8
	}
	if opts.Requests <= 0 {
		opts.Requests = 100
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Minute
	}
	client := &http.Client{Timeout: opts.Timeout}

	var (
		next      atomic.Int64
		ok, shed  atomic.Int64
		errCount  atomic.Int64
		mu        sync.Mutex
		latencies []float64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(opts.Requests) {
				if ctx.Err() != nil {
					return
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.URL, bytes.NewReader(opts.Body))
				if err != nil {
					errCount.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					errCount.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					ok.Add(1)
					mu.Lock()
					latencies = append(latencies, time.Since(t0).Seconds())
					mu.Unlock()
				case resp.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
				default:
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(latencies)
	rep := LoadReport{
		Clients:        opts.Clients,
		Requests:       opts.Requests,
		OK:             int(ok.Load()),
		Shed:           int(shed.Load()),
		Errors:         int(errCount.Load()),
		ElapsedSeconds: elapsed.Seconds(),
		P50Seconds:     percentile(latencies, 0.50),
		P95Seconds:     percentile(latencies, 0.95),
		P99Seconds:     percentile(latencies, 0.99),
	}
	if n := len(latencies); n > 0 {
		rep.MaxSeconds = latencies[n-1]
	}
	if elapsed > 0 {
		rep.RequestsPerSecond = float64(rep.OK) / elapsed.Seconds()
	}
	return rep, ctx.Err()
}

// percentile returns the nearest-rank q-quantile of sorted (0 when
// empty).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
