package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestBenchServe is the harness behind `make serve-bench`: gated on
// BENCH_SERVE_OUT, it boots a real daemon on a loopback listener,
// drives it with N concurrent clients over TCP, and writes the
// throughput/latency report (p50/p95/p99, requests/sec) plus the
// server's own counter deltas to the named JSON file. Knobs:
// BENCH_SERVE_CLIENTS (default 8), BENCH_SERVE_REQUESTS (default 160),
// BENCH_SERVE_BITS (default 6).
func TestBenchServe(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVE_OUT=<file> to write the serve load-benchmark report")
	}
	clients := envInt("BENCH_SERVE_CLIENTS", 8)
	requests := envInt("BENCH_SERVE_REQUESTS", 160)
	bits := envInt("BENCH_SERVE_BITS", 6)

	// The load benchmark measures generation throughput, so the result
	// cache is disabled — every request must pay the full pipeline.
	// Cache-path performance has its own harness in bench_cache_test.go.
	srv := New(Options{Addr: "127.0.0.1:0", MaxInFlight: clients, CacheMaxBytes: -1, Logger: quietLogger()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	go func() { served <- srv.ListenAndServe(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never bound a listener")
		}
		time.Sleep(time.Millisecond)
	}

	before := srv.Registry().Snapshot()
	body := fmt.Sprintf(`{"bits":%d,"max_parallel":2,"skip_nonlinearity":true}`, bits)
	rep, err := RunLoad(context.Background(), LoadOptions{
		URL:      "http://" + srv.Addr() + "/v1/generate",
		Body:     []byte(body),
		Clients:  clients,
		Requests: requests,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("load run produced no successful requests: %+v", rep)
	}
	delta := srv.Registry().Snapshot().Delta(before)

	cancel()
	if err := <-served; err != nil {
		t.Fatalf("drain after load: %v", err)
	}

	report := struct {
		Bits           int              `json:"bits"`
		Load           LoadReport       `json:"load"`
		ServerCounters map[string]int64 `json:"server_counters"`
	}{Bits: bits, Load: rep, ServerCounters: delta.Counters}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("%d clients x %d requests: %.1f req/s, p50 %.4fs p95 %.4fs p99 %.4fs -> %s",
		rep.Clients, rep.Requests, rep.RequestsPerSecond,
		rep.P50Seconds, rep.P95Seconds, rep.P99Seconds, out)
}

func envInt(key string, def int) int {
	if s := os.Getenv(key); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}
