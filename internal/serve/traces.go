// Trace introspection endpoints: the flight recorder's index and span
// trees (GET /debug/traces, /debug/traces/{id}) and the live span event
// stream (GET /v1/events, Server-Sent Events). The recorder holds the
// recent past — errored, degraded, and slowest-percentile requests pinned
// by the tail sampler — while the SSE stream shows the present: span
// start/end and counter events of in-flight generations, published by
// the span bus without ever blocking the pipeline.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ccdac/internal/obs"
)

// sseHeartbeat keeps idle event streams alive through proxies that
// time out silent connections.
const sseHeartbeat = 10 * time.Second

// traceIndexResponse is the JSON body of GET /debug/traces.
type traceIndexResponse struct {
	Traces []obs.TraceSummary `json:"traces"`
	Stats  traceIndexStats    `json:"stats"`
}

type traceIndexStats struct {
	Offered              int64            `json:"offered"`
	Evicted              int64            `json:"evicted"`
	Retained             map[string]int64 `json:"retained"`
	Live                 int              `json:"live"`
	SlowThresholdSeconds float64          `json:"slow_threshold_seconds"`
}

// handleTraceIndex lists every retained trace, newest first, with its
// retention reason — the entry point for "what went wrong recently".
func (s *Server) handleTraceIndex(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: trace recording disabled"))
		return
	}
	st := s.recorder.Stats()
	retained := make(map[string]int64, len(st.Retained))
	for k, v := range st.Retained {
		retained[string(k)] = v
	}
	writeJSON(w, http.StatusOK, traceIndexResponse{
		Traces: s.recorder.List(),
		Stats: traceIndexStats{
			Offered: st.Offered, Evicted: st.Evicted, Retained: retained,
			Live: st.Live, SlowThresholdSeconds: st.SlowThresholdSeconds,
		},
	})
}

// traceResponse is the JSON body of GET /debug/traces/{id}: the index
// row plus the full span tree and, when the trace was persisted to the
// artifact store, the content hash of its durable OTLP blob.
type traceResponse struct {
	TraceID         string           `json:"trace_id"`
	Tag             string           `json:"tag,omitempty"`
	Name            string           `json:"name"`
	Start           time.Time        `json:"start"`
	DurationSeconds float64          `json:"duration_seconds"`
	Err             string           `json:"error,omitempty"`
	Warnings        int              `json:"warnings,omitempty"`
	Reason          obs.RetainReason `json:"reason"`
	ArtifactHash    string           `json:"artifact_hash,omitempty"`
	// ProfileArtifacts maps capture kind (cpu, goroutine, heap) to the
	// store hash of the profile a for-cause retention triggered, each
	// retrievable via GET /v1/artifacts/{hash}.
	ProfileArtifacts map[string]string `json:"profile_artifacts,omitempty"`
	Spans            []obs.SpanRecord  `json:"spans"`
}

// handleTraceGet returns one retained trace: the native span-tree JSON
// by default, or an OTLP/JSON export (?format=otlp) ready to POST to a
// collector's /v1/traces.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: trace recording disabled"))
		return
	}
	id := r.PathValue("id")
	t, ok := s.recorder.Get(id)
	if !ok {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: trace %q not retained (expired or never recorded)", id))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "otlp":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteOTLP(w, "ccdacd", t.ID, t.Spans); err != nil {
			s.log.Error("otlp write failed", "trace_id", id, "err", err)
		}
	case "", "json":
		resp := traceResponse{
			TraceID: t.ID, Tag: t.Tag, Name: t.Name, Start: t.Start,
			DurationSeconds: t.Duration.Seconds(),
			Err:             t.Err, Warnings: t.Warnings, Reason: t.Reason,
			Spans: t.Spans,
		}
		if s.store != nil {
			if hash, ok := s.store.LookupIndex(traceIndexKey(t.ID)); ok {
				resp.ArtifactHash = hash
			}
			resp.ProfileArtifacts = s.profileArtifacts(t.ID)
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("serve: unknown trace format %q (want \"json\" or \"otlp\")", format))
	}
}

// handleEvents streams live span events as Server-Sent Events:
//
//	curl -N 'http://localhost:8080/v1/events?request_id=abc123'
//
// Each event carries the bus sequence number as the SSE id (gaps mean
// the stream fell behind and events were dropped — the bus never
// blocks a request on a slow consumer), the event type (span_start,
// span_end, counter, trace_finish) as the SSE event name, and the
// obs.Event JSON as data. With a request_id filter the stream closes
// itself after that trace's trace_finish; unfiltered streams run until
// the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, r, http.StatusInternalServerError, fmt.Errorf("serve: streaming unsupported"))
		return
	}
	filter := r.URL.Query().Get("request_id")
	sub := s.bus.Subscribe(filter, s.opts.EventBuffer)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			fl.Flush()
			if filter != "" && ev.Type == obs.EventTraceFinish {
				// The subscribed request is done; nothing more will match.
				return
			}
		}
	}
}

// traceIndexKey is the store index key under which a retained trace's
// OTLP blob is persisted.
func traceIndexKey(id string) string { return "trace/" + id }
