package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccdac/internal/leakcheck"
	"ccdac/internal/store"
)

// TestWarmRestart is the durable-cache acceptance bar: a result
// computed by one daemon process is served as a cache hit by the next
// process over the same store directory — with metrics identical to
// the cold run's.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"bits":5,"skip_nonlinearity":true}`

	srv1 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	resp, data := postGenerate(t, ts1.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp.StatusCode, data)
	}
	cold := decodeGenerate(t, data)
	if cold.CacheStatus != "cold" {
		t.Fatalf("first request cache_status = %q, want cold", cold.CacheStatus)
	}
	// Write-behind: make the persist visible, then "stop" the process.
	srv1.Close()
	ts1.Close()
	st, ok := srv1.StoreStats()
	if !ok || st.Writes == 0 || st.IndexEntries == 0 {
		t.Fatalf("store stats after flush = %+v, want a persisted, indexed result", st)
	}

	// A fresh process over the same directory restarts warm.
	srv2 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	resp, data = postGenerate(t, ts2.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp.StatusCode, data)
	}
	warm := decodeGenerate(t, data)
	if warm.CacheStatus != "hit" {
		t.Fatalf("restarted request cache_status = %q, want hit (restored from store)", warm.CacheStatus)
	}
	if cm, wm := fmt.Sprintf("%+v", cold.Metrics), fmt.Sprintf("%+v", warm.Metrics); cm != wm {
		t.Errorf("restored metrics differ from cold metrics:\ncold: %s\nwarm: %s", cm, wm)
	}
	// The restored entry re-entered the memory cache: a third request
	// hits without touching the store again.
	reads := mustStoreStats(t, srv2).Reads
	resp, data = postGenerate(t, ts2.URL, body)
	if got := decodeGenerate(t, data).CacheStatus; got != "hit" {
		t.Fatalf("third request cache_status = %q, want hit", got)
	}
	if after := mustStoreStats(t, srv2).Reads; after != reads {
		t.Errorf("memory-cached hit still read the store (%d -> %d reads)", reads, after)
	}
}

func mustStoreStats(t *testing.T, s *Server) store.Stats {
	t.Helper()
	st, ok := s.StoreStats()
	if !ok {
		t.Fatal("server has no store")
	}
	return st
}

// TestArtifactEndpoint: GET /v1/artifacts/{hash} serves the stored
// bytes verbatim for a good hash, 400s malformed hashes, 404s unknown
// ones, and 502s (never serves) a corrupted blob.
func TestArtifactEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	body := `{"bits":5,"skip_nonlinearity":true}`
	resp, data := postGenerate(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate: status %d: %s", resp.StatusCode, data)
	}
	srv.FlushStore()
	var req GenerateRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	hash, ok := srv.store.LookupIndex(cacheKey(req))
	if !ok {
		t.Fatal("persisted result not indexed")
	}

	get := func(h string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/artifacts/" + h)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	resp, data = get(hash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good artifact: status %d: %s", resp.StatusCode, data)
	}
	if et := resp.Header.Get("ETag"); et != `"`+hash+`"` {
		t.Errorf("ETag = %q, want quoted content hash", et)
	}
	var cr cachedResult
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatalf("artifact is not the serialized result: %v", err)
	}

	if resp, _ = get("not-a-hash"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed hash: status %d, want 400", resp.StatusCode)
	}
	if resp, _ = get(strings.Repeat("ab", 32)); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown hash: status %d, want 404", resp.StatusCode)
	}

	// Corrupt the blob on disk: the endpoint must refuse to serve it.
	blobPath := filepath.Join(dir, "blobs", hash[:2], hash)
	if err := os.WriteFile(blobPath, []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, data = get(hash)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("corrupt artifact: status %d (%s), want 502", resp.StatusCode, data)
	}
	if strings.Contains(string(data), "rotten") {
		t.Error("corrupt bytes leaked into the error response")
	}
	if n := mustStoreStats(t, srv).CorruptionsQuarantined; n != 1 {
		t.Errorf("CorruptionsQuarantined = %d, want 1", n)
	}

	// A server without a store 404s with a hint instead of crashing.
	srv2 := New(Options{Logger: quietLogger()})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/v1/artifacts/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("storeless server: status %d, want 404", resp2.StatusCode)
	}
}

// TestCorruptStoreRecomputes: a corrupted persisted result must not
// poison the warm restart — the lookup misses, the pipeline recomputes,
// and the client still gets a correct answer.
func TestCorruptStoreRecomputes(t *testing.T) {
	dir := t.TempDir()
	body := `{"bits":5,"skip_nonlinearity":true}`
	srv1 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	postGenerate(t, ts1.URL, body)
	srv1.Close()
	ts1.Close()
	var req GenerateRequest
	json.Unmarshal([]byte(body), &req)
	hash, ok := srv1.store.LookupIndex(cacheKey(req))
	if !ok {
		t.Fatal("result not indexed")
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", hash[:2], hash), []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	resp, data := postGenerate(t, ts2.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request over corrupt store: status %d: %s", resp.StatusCode, data)
	}
	if got := decodeGenerate(t, data).CacheStatus; got != "cold" {
		t.Errorf("cache_status = %q, want cold (corrupt entry quarantined, recomputed)", got)
	}
	if n := mustStoreStats(t, srv2).CorruptionsQuarantined; n != 1 {
		t.Errorf("CorruptionsQuarantined = %d, want 1", n)
	}
}

// TestStoreDegradedWarning: an unusable store directory must not stop
// the daemon — it starts memory-only, says so in response warnings, and
// flags it in /metrics.
func TestStoreDegradedWarning(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Logger: quietLogger(), StoreDir: filepath.Join(file, "store")})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, data := postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded daemon: status %d: %s", resp.StatusCode, data)
	}
	gr := decodeGenerate(t, data)
	found := false
	for _, w := range gr.Warnings {
		if strings.Contains(w, "store: degraded to memory-only") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings = %v, want a store-degradation warning", gr.Warnings)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mdata), "ccdac_store_degraded 1") {
		t.Error("/metrics does not report ccdac_store_degraded 1")
	}
}

// TestPersistProvenance: every persisted result appends a verifiable
// provenance record binding the request to the artifact.
func TestPersistProvenance(t *testing.T) {
	dir := t.TempDir()
	srv := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true}`)
	postGenerate(t, ts.URL, `{"bits":6,"skip_nonlinearity":true}`)
	srv.FlushStore()

	n, err := srv.store.VerifyProvenance()
	if err != nil || n != 2 {
		t.Fatalf("VerifyProvenance = %d, %v, want 2 clean records", n, err)
	}
	recs, err := srv.store.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ConfigJSON == "" || r.GoVersion == "" || r.Artifact == "" || r.Key == "" {
			t.Errorf("provenance record %d missing fields: %+v", r.Seq, r)
		}
		if h, ok := srv.store.LookupIndex(r.Key); !ok || h != r.Artifact {
			t.Errorf("record %d artifact %s not resolvable via its key", r.Seq, r.Artifact)
		}
	}

	// /metrics carries the store counters.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"ccdac_store_writes_total", "ccdac_store_index_entries 2",
		"ccdac_store_provenance_records 2", "ccdac_store_degraded 0",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPersisterShutdownNoLeak: closing the daemon stops the
// write-behind persister goroutine even with work freshly queued, and
// a straggler enqueue after close drops (and is counted) rather than
// blocking or resurrecting the loop.
func TestPersisterShutdownNoLeak(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{Logger: quietLogger(), StoreDir: t.TempDir(),
		ProfileWindow: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())

	resp, data := postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, data)
	}
	// A manual capture exercises the profile-blob persist path too.
	presp, err := http.Post(ts.URL+"/debug/profile", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()

	ts.Close()
	srv.Close()

	dropped := srv.persist.dropped.Load()
	srv.persist.enqueue(persistJob{blobKey: "profile/late/cpu", blob: []byte("late")})
	if got := srv.persist.dropped.Load(); got != dropped+1 {
		t.Errorf("post-close enqueue dropped count %d, want %d", got, dropped+1)
	}
	// Close is idempotent.
	srv.Close()
}
