package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/leakcheck"
)

func decodeGenerate(t *testing.T, data []byte) GenerateResponse {
	t.Helper()
	var gr GenerateResponse
	if err := json.Unmarshal(data, &gr); err != nil {
		t.Fatalf("decoding generate response: %v: %s", err, data)
	}
	return gr
}

// TestCacheCanonicalization: two bodies that differ only in JSON field
// order, explicitly-spelled defaults, and result-irrelevant knobs
// (workers) must share one cache entry — and the cached metrics must be
// identical to the cold ones.
func TestCacheCanonicalization(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postGenerate(t, ts.URL,
		`{"skip_nonlinearity":true,"bits":5,"style":"spiral","tech_node":"finfet12","workers":1,"cache":"default","max_parallel":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request: status %d: %s", resp.StatusCode, data)
	}
	cold := decodeGenerate(t, data)
	if cold.CacheStatus != "cold" {
		t.Fatalf("first request cache_status = %q, want cold", cold.CacheStatus)
	}
	if len(cold.Counters) == 0 {
		t.Error("cold response missing its counter snapshot")
	}

	// Same canonical request: field order scrambled, defaults omitted.
	resp, data = postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp.StatusCode, data)
	}
	warm := decodeGenerate(t, data)
	if warm.CacheStatus != "hit" {
		t.Fatalf("equivalent request cache_status = %q, want hit", warm.CacheStatus)
	}
	if warm.Counters != nil {
		t.Error("cache-hit response reported counters, but no generation ran for it")
	}
	if cm, wm := fmt.Sprintf("%+v", cold.Metrics), fmt.Sprintf("%+v", warm.Metrics); cm != wm {
		t.Errorf("cached metrics differ from cold metrics:\ncold: %s\nwarm: %s", cm, wm)
	}

	// A genuinely different request must not hit.
	resp, data = postGenerate(t, ts.URL, `{"bits":6,"skip_nonlinearity":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distinct request: status %d: %s", resp.StatusCode, data)
	}
	if got := decodeGenerate(t, data).CacheStatus; got != "cold" {
		t.Errorf("distinct request cache_status = %q, want cold", got)
	}
}

// TestCacheBypass: cache:"bypass" recomputes even with a warm entry,
// and an unknown directive is the client's fault.
func TestCacheBypass(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"bits":5,"skip_nonlinearity":true}`
	postGenerate(t, ts.URL, body) // warm the entry
	before := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil)

	resp, data := postGenerate(t, ts.URL, `{"bits":5,"skip_nonlinearity":true,"cache":"bypass"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bypass request: status %d: %s", resp.StatusCode, data)
	}
	gr := decodeGenerate(t, data)
	if gr.CacheStatus != "bypass" {
		t.Errorf("cache_status = %q, want bypass", gr.CacheStatus)
	}
	if len(gr.Counters) == 0 {
		t.Error("bypass response missing its counter snapshot")
	}
	after := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil)
	if after != before+1 {
		t.Errorf("core runs %d -> %d, want a real recomputation (+1)", before, after)
	}

	resp, data = postGenerate(t, ts.URL, `{"bits":5,"cache":"nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown cache directive: status %d, want 400: %s", resp.StatusCode, data)
	}
}

// TestSingleflightCollapse is the dedup acceptance bar: 8 concurrent
// identical requests produce exactly one generation — one cold
// response, the rest shared or served from the cache the flight filled.
func TestSingleflightCollapse(t *testing.T) {
	const clients = 8
	srv := New(Options{MaxInFlight: clients, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Slow enough (~hundreds of ms) that the stragglers arrive while
	// the flight is still running.
	body := `{"bits":9,"max_parallel":2,"theta_steps":64}`
	start := make(chan struct{})
	statuses := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var gr GenerateResponse
			if err := json.Unmarshal(data, &gr); err != nil {
				errs[i] = err
				return
			}
			statuses[i] = gr.CacheStatus
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	if runs := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil); runs != 1 {
		t.Errorf("ccdac_core_runs_total = %d, want 1 (all clients collapse to one generation)", runs)
	}
	cold := 0
	for i, st := range statuses {
		switch st {
		case "cold":
			cold++
		case "shared", "hit":
		default:
			t.Errorf("client %d: cache_status = %q", i, st)
		}
	}
	if cold != 1 {
		t.Errorf("%d cold responses, want exactly 1", cold)
	}
}

// TestSingleflightLeaderCancelHandoff: the client that started the
// generation gives up, a second client is already waiting — the work
// must transfer, not die with the leader. The follower gets a complete
// 200 and the process paid for exactly one generation.
func TestSingleflightLeaderCancelHandoff(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{MaxInFlight: 4, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"bits":10,"max_parallel":2,"theta_steps":360}` // hundreds of ms
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/generate", strings.NewReader(body))
		if err != nil {
			leaderDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- nil
	}()

	// Wait until the leader's flight is registered.
	var fl *flight
	deadline := time.Now().Add(10 * time.Second)
	for fl == nil {
		srv.flightMu.Lock()
		for _, f := range srv.flights {
			fl = f
		}
		srv.flightMu.Unlock()
		if fl == nil {
			if time.Now().After(deadline) {
				t.Fatal("leader flight never registered")
			}
			time.Sleep(time.Millisecond)
		}
	}

	followerDone := make(chan GenerateResponse, 1)
	followerErr := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
		if err != nil {
			followerErr <- err
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			followerErr <- fmt.Errorf("follower status %d: %s", resp.StatusCode, data)
			return
		}
		var gr GenerateResponse
		if err := json.Unmarshal(data, &gr); err != nil {
			followerErr <- err
			return
		}
		followerDone <- gr
	}()

	// Wait for the follower's subscription to land, then kill the
	// leader mid-generation: subs drops 2 -> 1, the flight survives.
	deadline = time.Now().Add(10 * time.Second)
	for {
		srv.flightMu.Lock()
		subs := fl.subs
		srv.flightMu.Unlock()
		if subs >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never subscribed to the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	<-leaderDone

	select {
	case gr := <-followerDone:
		if gr.CacheStatus != "shared" && gr.CacheStatus != "hit" {
			t.Errorf("follower cache_status = %q, want shared or hit", gr.CacheStatus)
		}
		if gr.Metrics.F3dBHz <= 0 {
			t.Errorf("follower got an empty result: %+v", gr.Metrics)
		}
	case err := <-followerErr:
		t.Fatalf("follower failed after leader cancel: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("follower never completed")
	}
	if runs := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil); runs != 1 {
		t.Errorf("ccdac_core_runs_total = %d, want 1 (handoff, not restart)", runs)
	}
}

// TestBatchDedupAndErrors: a batch fans through the same cache and
// singleflight path — duplicate items collapse, invalid items fail
// alone, and the batch itself still returns 200.
func TestBatchDedupAndErrors(t *testing.T) {
	srv := New(Options{MaxInFlight: 8, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	items := make([]string, 0, 8)
	for i := 0; i < 6; i++ {
		items = append(items, `{"bits":5,"skip_nonlinearity":true,"theta_steps":0}`)
	}
	items = append(items, `{"bits":4,"skip_nonlinearity":true}`, `{"bits":99}`)
	body := `{"requests":[` + strings.Join(items, ",") + `]}`

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != len(items) {
		t.Fatalf("%d items in response, want %d", len(br.Items), len(items))
	}
	for i := 0; i < 7; i++ {
		if br.Items[i].Status != http.StatusOK || br.Items[i].Response == nil {
			t.Errorf("item %d: status %d, response %v", i, br.Items[i].Status, br.Items[i].Response)
		}
	}
	if br.Items[7].Status != http.StatusBadRequest || br.Items[7].Error == "" {
		t.Errorf("invalid item: status %d error %q, want 400 with message", br.Items[7].Status, br.Items[7].Error)
	}
	// Two distinct valid configurations -> at most two generations, no
	// matter that six of the items were identical.
	if runs := srv.Registry().Snapshot().Counter("ccdac_core_runs_total", nil); runs != 2 {
		t.Errorf("ccdac_core_runs_total = %d, want 2 (6 duplicates collapsed)", runs)
	}

	// Oversized batches are rejected up front.
	over := `{"requests":[` + strings.Repeat(`{"bits":4},`, 64) + `{"bits":4}]}`
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(over))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("65-item batch: status %d, want 400", resp.StatusCode)
	}
}

// TestServeCacheEvictionBounded: a deliberately tiny result cache under
// concurrent distinct requests must evict rather than grow, and the
// cache statistics must be visible on /metrics.
func TestServeCacheEvictionBounded(t *testing.T) {
	srv := New(Options{MaxInFlight: 8, CacheMaxBytes: 400, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for bits := 4; bits <= 6; bits++ {
			wg.Add(1)
			go func(bits int) {
				defer wg.Done()
				body := fmt.Sprintf(`{"bits":%d,"skip_nonlinearity":true}`, bits)
				resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader(body))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(bits)
		}
	}
	wg.Wait()

	st, ok := srv.cacheStats()
	if !ok {
		t.Fatal("cache unexpectedly disabled")
	}
	if st.Bytes > 400 {
		t.Errorf("cache bytes = %d, exceeds the 400-byte bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions despite 3 distinct entries and a one-entry budget")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	series := parsePromText(t, string(text))
	for _, want := range []string{
		"ccdac_serve_cache_hits_total",
		"ccdac_serve_cache_misses_total",
		"ccdac_serve_cache_evictions_total",
		"ccdac_serve_cache_bytes",
		`ccdac_memo_hits_total{cache="core_place"}`,
		`ccdac_memo_misses_total{cache="core_route"}`,
	} {
		if _, ok := series[want]; !ok {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if got := series["ccdac_serve_cache_evictions_total"]; got == 0 {
		t.Error("/metrics reports zero serve-cache evictions")
	}
}
