// Package serve is the long-running HTTP front end of the ccdac flow:
// a daemon (cmd/ccdacd) that wraps GenerateContext behind POST
// /v1/generate and turns the per-run observability of internal/obs
// into process-level observability. Every request runs under its own
// trace (isolated spans and metrics, as in library use), and the
// request's frozen snapshot folds into one global registry via
// Registry.Merge, so /metrics exposes fleet totals — throughput,
// latency, degradations, CG-fallback rates — rather than
// per-invocation printouts.
//
// Endpoints:
//
//	POST /v1/generate    JSON config in, JSON metrics summary + warnings out
//	GET  /v1/events      SSE stream of live span events (?request_id= filters)
//	GET  /metrics        Prometheus (or OpenMetrics, via Accept) exposition
//	GET  /healthz        liveness + uptime/inflight/request counts + version
//	GET  /readyz         readiness (503 while draining)
//	GET  /debug/traces   flight-recorder index; /debug/traces/{id} full trace
//	     /debug/pprof/   net/http/pprof profiles
//
// Request middleware (see wrap): request-ID generation, structured
// slog JSON logging correlated to the root span ID, per-route latency
// histograms, panic containment reusing *ccdac.PipelineError, a
// bounded-concurrency semaphore with 429 shedding, and per-request
// timeouts. ListenAndServe drains gracefully when its context is
// canceled (cmd/ccdacd wires that to SIGTERM/SIGINT).
package serve

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccdac/internal/jobs"
	"ccdac/internal/memo"
	"ccdac/internal/numeric"
	"ccdac/internal/obs"
	"ccdac/internal/obs/profcap"
	"ccdac/internal/store"
)

// Options tunes one Server. The zero value is usable: every field has
// a default applied by New.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// MaxInFlight bounds concurrent /v1/generate requests; excess
	// requests are shed with 429 rather than queued (default
	// 2×GOMAXPROCS).
	MaxInFlight int
	// Workers is the per-request parallelism budget for the analysis
	// hot loops, composing with MaxInFlight so the daemon fans out to
	// at most MaxInFlight × Workers goroutines instead of every request
	// grabbing GOMAXPROCS. Default max(1, GOMAXPROCS / MaxInFlight);
	// negative forces serial analysis. Requests may ask for fewer
	// workers than this cap, never more.
	Workers int
	// RequestTimeout is the per-request deadline applied to
	// /v1/generate; the pipeline honors it at every stage boundary
	// (default 60s).
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful shutdown: in-flight requests get
	// this long to finish after the serve context is canceled (default
	// 10s).
	DrainTimeout time.Duration
	// Logger receives the structured request log (default: JSON to
	// stderr).
	Logger *slog.Logger
	// CacheMaxBytes bounds the server's result cache: identical
	// canonicalized generate requests are answered from memory, and
	// concurrent identical requests collapse into one generation
	// (singleflight). 0 selects the 64 MiB default; negative disables
	// both the cache and singleflight (every request recomputes, as for
	// cache:"bypass"). See docs/PERFORMANCE.md.
	CacheMaxBytes int64
	// CacheTTL expires result-cache entries after this duration (0 =
	// entries live until evicted by the byte bound).
	CacheTTL time.Duration
	// MaxBatch caps the number of sub-requests one POST /v1/batch may
	// carry (default 64); larger batches are rejected with 400.
	MaxBatch int
	// StoreDir, when non-empty, backs the result cache with a durable
	// content-addressed artifact store at this directory: cold results
	// persist via write-behind (the request path never blocks on disk),
	// the cache restarts warm, and GET /v1/artifacts/{hash} serves
	// stored blobs. If the directory is unusable the daemon still
	// starts, degraded to memory-only, and says so in response
	// warnings. See docs/ROBUSTNESS.md.
	StoreDir string
	// StoreQueue bounds the write-behind queue (default 256); when the
	// disk cannot keep up, further results stay memory-only and a drop
	// counter ticks rather than any request blocking.
	StoreQueue int
	// TraceCapacity bounds each retention class of the flight recorder
	// (error / degraded / slow / recent rings; see internal/obs): 0
	// selects the default (32 per class), negative disables trace
	// recording entirely — /debug/traces then 404s.
	TraceCapacity int
	// TraceSlowQuantile is the latency quantile above which a healthy
	// request's trace is tail-sampled as "slow" (default 0.99).
	TraceSlowQuantile float64
	// SlowRequest, when positive, escalates the access log to WARN for
	// requests slower than this threshold, tagging the entry with the
	// root span ID and the retained trace ID for follow-up via
	// /debug/traces/{id}.
	SlowRequest time.Duration
	// EventBuffer is the per-subscriber channel depth for GET /v1/events
	// SSE streams (default 256). A subscriber that cannot keep up loses
	// events — publishing never blocks the pipeline.
	EventBuffer int
	// ProfileWindow is the CPU-profile duration captured when the
	// flight recorder retains a trace for cause (slow/error/degraded):
	// 0 selects 2s, negative disables triggered capture. Captures are
	// rate-limited (one at a time, ProfileCooldown apart, byte-capped)
	// so they never degrade serving; see internal/obs/profcap.
	ProfileWindow time.Duration
	// ProfileCooldown is the minimum gap between triggered captures
	// (default 60s).
	ProfileCooldown time.Duration
	// NumericInterval is the cadence of the numeric-health watchdog's
	// golden-reference drift checks, surfaced in /healthz and the
	// ccdac_numeric_* metrics: 0 selects 60s, negative disables the
	// watchdog. Sweeps run lazily on health/metrics reads (microseconds
	// each), so an idle daemon spends nothing on them.
	NumericInterval time.Duration
	// AccessLogSample emits only one in N healthy (INFO-level, 2xx)
	// access-log lines (default 1 = log everything). WARN and above —
	// slow requests, degradations, errors — are always logged, so at
	// high QPS the signal survives the volume. Suppressed lines are
	// counted in ccdac_serve_access_log_sampled_total.
	AccessLogSample int
	// JobWorkers sizes the async job tier's worker pool (POST
	// /v1/jobs) — concurrently running job groups, decoupled from
	// MaxInFlight (default 2). See internal/jobs.
	JobWorkers int
	// JobQueueDepth bounds accepted-but-unstarted jobs; submissions
	// beyond it get 429 with queue depth and an honest Retry-After
	// (default 64).
	JobQueueDepth int
	// JobMaxBatch caps a compatibility micro-batch of yield jobs
	// sharing one expensive layout prefix (default 16; <= 1 disables
	// coalescing); JobMaxWait bounds how long the first job of a batch
	// waits for company (default 25ms, negative disables).
	JobMaxBatch int
	JobMaxWait  time.Duration
	// JobCheckpointEvery is the default Monte-Carlo sample block
	// between durable checkpoints of long yield jobs (default 50000).
	JobCheckpointEvery int
}

// Server is one daemon instance: the route mux, the process-level
// metrics registry, and the admission state.
type Server struct {
	opts Options
	log  *slog.Logger
	reg  *obs.Registry
	mux  *http.ServeMux

	sem      chan struct{}
	inflight atomic.Int64
	served   atomic.Int64
	ready    atomic.Bool
	start    time.Time

	// cache answers repeat generate requests from memory (nil when
	// Options.CacheMaxBytes < 0); flights collapses concurrent identical
	// requests into one generation (see cache.go).
	cache    *memo.Cache
	flightMu sync.Mutex
	flights  map[string]*flight

	// store is the durable artifact tier behind the result cache (nil
	// without Options.StoreDir); persist is its write-behind queue.
	store   *store.Store
	persist *persister

	// recorder is the flight recorder of recently completed request
	// traces (nil when Options.TraceCapacity < 0); bus streams live span
	// events to /v1/events subscribers.
	recorder *obs.Recorder
	bus      *obs.Bus

	// profcap captures bounded profile windows when the recorder
	// retains a trace for cause (nil when Options.ProfileWindow < 0).
	profcap *profcap.Capturer
	// watchdog runs the numeric-health drift checks (nil when
	// Options.NumericInterval < 0); sweeps are driven lazily from
	// health/metrics reads under watchdogMu.
	watchdog    *numeric.Watchdog
	watchdogMu  sync.Mutex
	lastSweep   time.Time
	accessSeq   atomic.Int64
	logsSampled atomic.Int64

	// jobs is the async job tier (queue + coalescer + worker pool)
	// behind /v1/jobs; jobIDs mirrors the durable job-ID manifest.
	jobs    *jobs.Manager
	jobIDMu sync.Mutex
	jobIDs  map[string]bool
	// reqSec tracks an EWMA of limited-route request seconds (as
	// math.Float64bits) so shed 429s can carry an honest Retry-After.
	reqSec atomic.Uint64

	mu   sync.Mutex
	addr string

	// onTrace, when set (tests), observes each generate request's
	// finished trace after its metrics merged into the global registry.
	onTrace func(*obs.Trace)
}

// New builds a Server with its routes registered. The server is ready
// (readyz 200) from construction; ListenAndServe flips it unready when
// draining.
func New(opts Options) *Server {
	if opts.Addr == "" {
		opts.Addr = ":8080"
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0) / opts.MaxInFlight
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 60 * time.Second
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if opts.CacheMaxBytes == 0 {
		opts.CacheMaxBytes = 64 << 20
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 64
	}
	s := &Server{
		opts:    opts,
		log:     opts.Logger,
		reg:     obs.NewRegistry(),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.MaxInFlight),
		start:   time.Now(),
		flights: map[string]*flight{},
	}
	if opts.CacheMaxBytes > 0 {
		// Per-server, not globally registered: stats are injected into
		// this server's /metrics by handleMetrics.
		s.cache = memo.New("serve_results", opts.CacheMaxBytes, opts.CacheTTL)
	}
	if opts.StoreDir != "" {
		st, err := store.Open(opts.StoreDir, store.Options{})
		if err != nil {
			// The daemon must come up even on a hostile disk: run
			// memory-only, flag the degradation in /metrics and response
			// warnings, and keep serving.
			s.log.Warn("artifact store unavailable, degrading to memory-only",
				"dir", opts.StoreDir, "err", err)
			st = store.Degrade(err)
		}
		s.store = st
		s.persist = newPersister(st, opts.StoreQueue)
		if n := st.IndexLen(); n > 0 {
			s.log.Info("artifact store opened", "dir", opts.StoreDir, "indexed_results", n)
		}
	}
	if opts.TraceCapacity >= 0 {
		s.recorder = obs.NewRecorder(obs.RecorderOptions{
			Capacity:     opts.TraceCapacity,
			SlowQuantile: opts.TraceSlowQuantile,
		})
	}
	s.bus = obs.NewBus()
	if opts.ProfileWindow >= 0 {
		s.profcap = profcap.New(profcap.Options{
			Window:   opts.ProfileWindow,
			Cooldown: opts.ProfileCooldown,
		})
	}
	if opts.NumericInterval >= 0 {
		interval := opts.NumericInterval
		if interval == 0 {
			interval = time.Minute
		}
		s.opts.NumericInterval = interval
		s.watchdog = numeric.New(interval, numeric.DefaultChecks()...)
	}
	// The job tier shares the server's bus (SSE), registry (metrics)
	// and — when a store is configured — its durability path. Its
	// intra-job compute budget is the same per-request Workers cap;
	// its worker count is the job-level concurrency knob.
	var jp jobs.Persist
	if s.store != nil {
		jp = &jobStore{s: s}
	}
	s.jobs = jobs.New(jobs.Options{
		Workers:         opts.JobWorkers,
		QueueDepth:      opts.JobQueueDepth,
		MaxBatch:        opts.JobMaxBatch,
		MaxWait:         opts.JobMaxWait,
		CheckpointEvery: opts.JobCheckpointEvery,
		ComputeWorkers:  opts.Workers,
		Memo:            opts.CacheMaxBytes >= 0,
		Bus:             s.bus,
		Registry:        s.reg,
		Persist:         jp,
	})
	if s.store != nil {
		s.recoverJobs()
	}
	s.ready.Store(true)

	s.mux.Handle("POST /v1/generate", s.wrap("generate", true, http.HandlerFunc(s.handleGenerate)))
	s.mux.Handle("POST /v1/batch", s.wrap("batch", true, http.HandlerFunc(s.handleBatch)))
	s.mux.Handle("POST /v1/jobs", s.wrap("jobs", false, http.HandlerFunc(s.handleJobSubmit)))
	s.mux.Handle("GET /v1/jobs/{id}", s.wrap("jobs", false, http.HandlerFunc(s.handleJobGet)))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.wrap("jobs", false, http.HandlerFunc(s.handleJobCancel)))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.wrap("job_events", false, http.HandlerFunc(s.handleJobEvents)))
	s.mux.Handle("GET /v1/artifacts/{hash}", s.wrap("artifacts", false, http.HandlerFunc(s.handleArtifact)))
	s.mux.Handle("GET /v1/events", s.wrap("events", false, http.HandlerFunc(s.handleEvents)))
	s.mux.Handle("GET /debug/traces", s.wrap("traces", false, http.HandlerFunc(s.handleTraceIndex)))
	s.mux.Handle("GET /debug/traces/{id}", s.wrap("traces", false, http.HandlerFunc(s.handleTraceGet)))
	s.mux.Handle("GET /metrics", s.wrap("metrics", false, http.HandlerFunc(s.handleMetrics)))
	s.mux.Handle("GET /healthz", s.wrap("healthz", false, http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /readyz", s.wrap("readyz", false, http.HandlerFunc(s.handleReadyz)))
	s.mux.Handle("POST /debug/profile", s.wrap("profile", false, http.HandlerFunc(s.handleProfile)))
	// Profiling routes are deliberately non-limited: wrap applies the
	// per-request timeout only to limited routes, so a CPU profile
	// longer than RequestTimeout is never killed mid-capture. The
	// windowed collectors (profile, trace) instead get their `seconds`
	// parameter clamped below the graceful-drain deadline, so a pending
	// profile cannot stall SIGTERM drain either.
	s.mux.Handle("/debug/pprof/", s.wrap("pprof", false, http.HandlerFunc(pprof.Index)))
	s.mux.Handle("/debug/pprof/cmdline", s.wrap("pprof", false, http.HandlerFunc(pprof.Cmdline)))
	s.mux.Handle("/debug/pprof/profile", s.wrap("pprof", false, s.clampSeconds(http.HandlerFunc(pprof.Profile))))
	s.mux.Handle("/debug/pprof/symbol", s.wrap("pprof", false, http.HandlerFunc(pprof.Symbol)))
	s.mux.Handle("/debug/pprof/trace", s.wrap("pprof", false, s.clampSeconds(http.HandlerFunc(pprof.Trace))))
	return s
}

// Handler returns the server's full route tree (for tests and for
// embedding behind an outer mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the process-level metrics registry every request's
// per-trace snapshot merges into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Addr returns the bound listen address once ListenAndServe has a
// listener ("" before that) — useful with Addr ":0".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// ListenAndServe serves until ctx is canceled, then drains: readiness
// flips to 503 (load balancers stop sending), in-flight requests get
// DrainTimeout to finish, and the listener closes. It returns nil on a
// clean drain, the listen/serve error otherwise.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.addr = ln.Addr().String()
	s.mu.Unlock()
	hs := &http.Server{
		Handler:     s.mux,
		BaseContext: func(net.Listener) context.Context { return context.Background() },
	}
	s.log.Info("ccdacd listening", "addr", s.Addr(), "max_inflight", s.opts.MaxInFlight,
		"workers", s.opts.Workers, "request_timeout", s.opts.RequestTimeout.String())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.ready.Store(false)
		s.log.Info("draining", "inflight", s.inflight.Load(), "drain_timeout", s.opts.DrainTimeout.String())
		sctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// Flush the write-behind queue so results computed during the
		// drain restart warm next boot.
		s.Close()
		s.log.Info("drained", "requests_served", s.served.Load())
		return nil
	}
}

// Close flushes and stops the durable-store write-behind queue. It is
// called automatically at the end of a graceful drain; tests that use
// Handler directly call it to make pending persists visible before
// reopening the store directory.
func (s *Server) Close() {
	// The capturer goes first: closing it interrupts any open profile
	// window (releasing the process-global CPU profiler) and its done
	// callback may still enqueue artifacts, which the persister below
	// then flushes.
	if s.profcap != nil {
		s.profcap.Close()
	}
	// The job tier stops before the persister: its shutdown persists
	// final job records (still-running jobs stay non-terminal so the
	// next boot resumes them), and those writes must drain to disk.
	if s.jobs != nil {
		s.jobs.Close()
	}
	if s.persist != nil {
		s.persist.close()
	}
}

// Jobs exposes the async job tier (tests and the CLI wiring).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// FlushStore blocks until every queued result persist has reached the
// store, without stopping the queue (tests).
func (s *Server) FlushStore() {
	if s.persist != nil {
		s.persist.flush()
	}
}

// StoreStats returns the artifact store's health accounting (zero
// Stats and false when no store is configured).
func (s *Server) StoreStats() (store.Stats, bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}
