package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDebugProfileCapturesAndPersists: one POST /debug/profile session
// against a store-backed server yields CPU/goroutine/heap artifacts,
// each retrievable via /v1/artifacts/{hash} once the write-behind
// queue drains.
func TestDebugProfileCapturesAndPersists(t *testing.T) {
	srv := New(Options{
		Logger:        quietLogger(),
		StoreDir:      t.TempDir(),
		ProfileWindow: 50 * time.Millisecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/debug/profile", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile capture status %d: %s", resp.StatusCode, data)
	}
	var pr profileResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Status != "captured" || pr.Reason != "manual" {
		t.Fatalf("capture response: %+v", pr)
	}
	if !pr.Persisted || pr.Warning != "" {
		t.Fatalf("store-backed capture not persisted: %+v", pr)
	}
	for _, kind := range []string{"goroutine", "heap"} {
		if pr.Artifacts[kind] == "" {
			t.Errorf("capture missing %s artifact: %+v", kind, pr)
		}
	}
	// The CPU profile of an idle 50ms window can legitimately be empty
	// of samples but the proto itself must exist unless dropped.
	if pr.Artifacts["cpu"] == "" && len(pr.Dropped) == 0 {
		t.Errorf("capture has neither cpu artifact nor a drop record: %+v", pr)
	}

	srv.persist.flush()
	for kind, hash := range pr.Artifacts {
		r, err := http.Get(ts.URL + "/v1/artifacts/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s artifact %s: status %d", kind, hash, r.StatusCode)
		}
		if int64(len(blob)) != pr.Bytes[kind] {
			t.Errorf("%s artifact size %d, reported %d", kind, len(blob), pr.Bytes[kind])
		}
	}
}

// TestDebugProfileConflictAndDisabled: a second capture while one is in
// flight is 409, never queued; a server built with ProfileWindow < 0
// has no capturer and 404s.
func TestDebugProfileConflictAndDisabled(t *testing.T) {
	srv := New(Options{Logger: quietLogger(), ProfileWindow: 300 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.profcap.CaptureSync(context.Background(), "test", "", 300*time.Millisecond)
	}()
	for i := 0; !srv.profcap.Busy(); i++ {
		if i > 100 {
			t.Fatal("capturer never became busy")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/debug/profile?seconds=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent capture status %d, want 409", resp.StatusCode)
	}
	wg.Wait()

	off := New(Options{Logger: quietLogger(), ProfileWindow: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err = http.Post(tsOff.URL+"/debug/profile", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled capture status %d, want 404", resp.StatusCode)
	}
}

// TestDebugProfileBadSeconds rejects malformed windows up front.
func TestDebugProfileBadSeconds(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, q := range []string{"seconds=0", "seconds=-3", "seconds=soon"} {
		resp, err := http.Post(ts.URL+"/debug/profile?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestClampSecondsRewritesPprofWindow: the pprof passthrough clamps
// `seconds` below the drain deadline so a profile session can never
// outlive a graceful shutdown. Asserted against a recording handler,
// not a real profile window.
func TestClampSecondsRewritesPprofWindow(t *testing.T) {
	srv := New(Options{Logger: quietLogger(), DrainTimeout: 3 * time.Second})
	var got string
	h := srv.clampSeconds(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.URL.Query().Get("seconds")
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/profile?seconds=120", nil))
	if got != "2" {
		t.Errorf("seconds clamped to %q, want \"2\" (drain 3s - 1)", got)
	}
	if rec.Header().Get("X-Seconds-Clamped") != "2" {
		t.Errorf("clamp header = %q, want 2", rec.Header().Get("X-Seconds-Clamped"))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/profile?seconds=1", nil))
	if got != "1" {
		t.Errorf("in-bounds seconds rewritten to %q", got)
	}
	if rec.Header().Get("X-Seconds-Clamped") != "" {
		t.Error("in-bounds request carries a clamp header")
	}
}

// TestPprofExemptFromRequestTimeout is the timeout-exemption satellite:
// a 1s profile window must survive a server whose per-request deadline
// is 50ms, because only limited (generate-class) routes run under the
// timeout.
func TestPprofExemptFromRequestTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("1s profile window in -short mode")
	}
	srv := New(Options{Logger: quietLogger(), RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof profile status %d: %s", resp.StatusCode, data)
	}
	if d := time.Since(start); d < time.Second {
		t.Fatalf("profile window returned after %v, want >= 1s (deadline must not apply)", d)
	}
	if len(data) == 0 {
		t.Fatal("empty profile body")
	}
}

// TestAccessLogSampling: with AccessLogSample N only one in N healthy
// INFO lines is emitted (the rest counted), while WARN-level lines —
// here, slow requests — always log.
func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(syncWriter{&mu, &buf}, nil))
	srv := New(Options{Logger: logger, AccessLogSample: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const requests = 20
	for i := 0; i < requests; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	mu.Lock()
	lines := strings.Count(buf.String(), `"msg":"request"`)
	mu.Unlock()
	if lines != requests/10 {
		t.Errorf("sampled access log emitted %d lines for %d requests, want %d", lines, requests, requests/10)
	}
	if got := srv.logsSampled.Load(); got != requests-requests/10 {
		t.Errorf("logsSampled = %d, want %d", got, requests-requests/10)
	}

	// Slow requests escalate to WARN and bypass sampling entirely.
	var warnBuf bytes.Buffer
	warnLogger := slog.New(slog.NewJSONHandler(syncWriter{&mu, &warnBuf}, nil))
	slow := New(Options{Logger: warnLogger, AccessLogSample: 10, SlowRequest: time.Nanosecond})
	tsSlow := httptest.NewServer(slow.Handler())
	defer tsSlow.Close()
	for i := 0; i < 5; i++ {
		resp, err := http.Get(tsSlow.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	mu.Lock()
	warns := strings.Count(warnBuf.String(), `"msg":"slow request"`)
	mu.Unlock()
	if warns != 5 {
		t.Errorf("slow-request WARNs = %d, want 5 (sampling must not eat WARN+)", warns)
	}
}

// TestHealthzNumericSection: the liveness payload carries the numeric
// watchdog's golden-check results, and the lazy sweep runs once per
// NumericInterval no matter how often healthz is read.
func TestHealthzNumericSection(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var hr healthzResponse
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &hr); err != nil {
			t.Fatal(err)
		}
	}
	if hr.Status != "ok" || hr.Numeric == nil {
		t.Fatalf("healthz = %+v, want ok with numeric section", hr)
	}
	if hr.Numeric.Status != "ok" || len(hr.Numeric.Checks) < 4 {
		t.Fatalf("numeric section = %+v, want >= 4 passing checks", hr.Numeric)
	}
	for _, c := range hr.Numeric.Checks {
		if !c.OK {
			t.Errorf("check %s drifted: %+v", c.Name, c)
		}
	}
	// Default NumericInterval is one minute: three reads, one sweep.
	if hr.Numeric.Runs != 1 {
		t.Errorf("numeric sweeps = %d after 3 healthz reads, want 1 (lazy cadence)", hr.Numeric.Runs)
	}

	off := New(Options{Logger: quietLogger(), NumericInterval: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Get(tsOff.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var hrOff healthzResponse
	if err := json.Unmarshal(data, &hrOff); err != nil {
		t.Fatal(err)
	}
	if hrOff.Numeric != nil {
		t.Errorf("disabled watchdog still reports a numeric section: %+v", hrOff.Numeric)
	}
}

// TestMetricsNumericAndProfcapSeries: the scrape surfaces the numeric
// watchdog gauges, profcap counters, hit-ratio gauges, and the sampled
// access-log counter.
func TestMetricsNumericAndProfcapSeries(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	series := parsePromText(t, string(text))

	for _, key := range []string{
		`ccdac_numeric_check_drift{check="cg_solve"}`,
		`ccdac_numeric_check_ok{check="chol_reconstruction"}`,
		`ccdac_numeric_check_ok{check="lu_solve"}`,
		`ccdac_numeric_check_ok{check="rho_memo"}`,
	} {
		if _, ok := series[key]; !ok {
			t.Errorf("scrape missing %s", key)
		}
	}
	if series[`ccdac_numeric_check_ok{check="cg_solve"}`] != 1 {
		t.Error("cg_solve check not passing in scrape")
	}
	if series["ccdac_numeric_runs_total"] < 1 {
		t.Error("scrape missing ccdac_numeric_runs_total")
	}
	for _, key := range []string{
		"ccdac_profcap_triggered_total", "ccdac_profcap_captured_total",
		"ccdac_profcap_busy", "ccdac_serve_access_log_sampled_total",
	} {
		if _, ok := series[key]; !ok {
			t.Errorf("scrape missing %s", key)
		}
	}
}

// TestSlowTraceTriggersProfileCapture is the end-to-end acceptance
// path: a forced slow request is tail-sampled for cause, the retention
// fires a triggered profile capture, and the trace's /debug/traces/{id}
// view links persisted profile artifacts retrievable through
// /v1/artifacts/{hash}.
func TestSlowTraceTriggersProfileCapture(t *testing.T) {
	srv := New(Options{
		Logger:          quietLogger(),
		StoreDir:        t.TempDir(),
		ProfileWindow:   50 * time.Millisecond,
		ProfileCooldown: time.Millisecond,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Arm the tail sampler's slow classifier: it needs a window of
	// healthy latencies before it can call anything an outlier.
	for i := 0; i < 18; i++ {
		resp, data := postGenerate(t, ts.URL, `{"bits":4,"skip_nonlinearity":true,"cache":"bypass"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	// One request an order of magnitude slower than the window: lands
	// above the slow quantile and is retained for cause.
	resp, data := postGenerate(t, ts.URL, `{"bits":10,"theta_steps":360,"cache":"bypass"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow request: status %d: %s", resp.StatusCode, data)
	}

	// Find the for-cause retention.
	var slowID string
	var idx traceIndexResponse
	iresp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	idata, _ := io.ReadAll(iresp.Body)
	iresp.Body.Close()
	if err := json.Unmarshal(idata, &idx); err != nil {
		t.Fatal(err)
	}
	for _, tr := range idx.Traces {
		if tr.Reason == "slow" {
			slowID = tr.ID
			break
		}
	}
	if slowID == "" {
		t.Fatalf("no slow-retained trace after outlier request: %s", idata)
	}

	// The capture runs asynchronously (50ms window + write-behind
	// persist); poll the trace view until the artifacts link up.
	var tv traceResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		tresp, err := http.Get(ts.URL + "/debug/traces/" + slowID)
		if err != nil {
			t.Fatal(err)
		}
		tdata, _ := io.ReadAll(tresp.Body)
		tresp.Body.Close()
		if tresp.StatusCode != http.StatusOK {
			t.Fatalf("trace view status %d: %s", tresp.StatusCode, tdata)
		}
		if err := json.Unmarshal(tdata, &tv); err != nil {
			t.Fatal(err)
		}
		if len(tv.ProfileArtifacts) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never linked profile artifacts: %s", slowID, tdata)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every linked artifact must be retrievable by content hash.
	for kind, hash := range tv.ProfileArtifacts {
		aresp, err := http.Get(ts.URL + "/v1/artifacts/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := io.ReadAll(aresp.Body)
		aresp.Body.Close()
		if aresp.StatusCode != http.StatusOK {
			t.Errorf("%s artifact %s: status %d", kind, hash, aresp.StatusCode)
		}
		if len(blob) == 0 {
			t.Errorf("%s artifact %s: empty blob", kind, hash)
		}
	}
	if _, ok := tv.ProfileArtifacts["goroutine"]; !ok {
		t.Errorf("trace view missing goroutine profile link: %v", tv.ProfileArtifacts)
	}

	// The capture shows up in the capturer's accounting too.
	if st := srv.profcap.Stats(); st.Triggered < 1 || st.Captured < 1 {
		t.Errorf("profcap stats after slow trace = %+v, want >= 1 triggered and captured", st)
	}
}
