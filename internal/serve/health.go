package serve

import (
	"net/http"
	"runtime"
	"strings"
	"time"

	"ccdac"
	"ccdac/internal/memo"
	"ccdac/internal/numeric"
	"ccdac/internal/obs"
)

// hitRatio is hits/(hits+misses), 0 before any lookup.
func hitRatio(hits, misses int64) float64 {
	if total := hits + misses; total > 0 {
		return float64(hits) / float64(total)
	}
	return 0
}

// handleMetrics exposes the global registry in the Prometheus text
// format. Point-in-time process gauges (uptime, in-flight requests,
// goroutines) are set at scrape time from their authoritative sources
// rather than maintained on the request path; cache statistics are
// likewise injected at scrape time from the caches' own counters
// (absolute values, stateless — never merged, so never double-counted).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge("ccdac_serve_uptime_seconds", nil).Set(time.Since(s.start).Seconds())
	s.reg.Gauge("ccdac_serve_inflight", nil).Set(float64(s.inflight.Load()))
	s.reg.Gauge("ccdac_serve_goroutines", nil).Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("ccdac_build_info",
		obs.Labels{"version": ccdac.Version, "go_version": runtime.Version()}).Set(1)
	s.numericSweep()
	snap := s.reg.Snapshot()
	for _, st := range memo.Snapshot() {
		labels := obs.Labels{"cache": st.Name}
		snap.Counters[obs.SeriesKey("ccdac_memo_hits_total", labels)] = st.Hits
		snap.Counters[obs.SeriesKey("ccdac_memo_misses_total", labels)] = st.Misses
		snap.Counters[obs.SeriesKey("ccdac_memo_evictions_total", labels)] = st.Evictions
		snap.Gauges[obs.SeriesKey("ccdac_memo_bytes", labels)] = float64(st.Bytes)
		snap.Gauges[obs.SeriesKey("ccdac_memo_entries", labels)] = float64(st.Entries)
		snap.Gauges[obs.SeriesKey("ccdac_memo_hit_ratio", labels)] = hitRatio(st.Hits, st.Misses)
	}
	if st, ok := s.cacheStats(); ok {
		snap.Counters["ccdac_serve_cache_hits_total"] = st.Hits
		snap.Counters["ccdac_serve_cache_misses_total"] = st.Misses
		snap.Counters["ccdac_serve_cache_evictions_total"] = st.Evictions
		snap.Gauges["ccdac_serve_cache_bytes"] = float64(st.Bytes)
		snap.Gauges["ccdac_serve_cache_entries"] = float64(st.Entries)
		snap.Gauges["ccdac_serve_cache_hit_ratio"] = hitRatio(st.Hits, st.Misses)
	}
	if st, ok := s.StoreStats(); ok {
		snap.Counters["ccdac_store_writes_total"] = st.Writes
		snap.Counters["ccdac_store_reads_total"] = st.Reads
		snap.Counters["ccdac_store_hits_total"] = st.Hits
		snap.Counters["ccdac_store_retries_total"] = st.Retries
		snap.Counters["ccdac_store_corruptions_quarantined_total"] = st.CorruptionsQuarantined
		snap.Counters["ccdac_store_degraded_ops_total"] = st.DegradedOps
		snap.Counters["ccdac_store_persist_dropped_total"] = s.persist.dropped.Load()
		snap.Gauges["ccdac_store_index_entries"] = float64(st.IndexEntries)
		snap.Gauges["ccdac_store_provenance_records"] = float64(st.ProvenanceRecords)
		snap.Gauges["ccdac_store_mem_bytes"] = float64(st.MemBytes)
		degraded := 0.0
		if st.Degraded {
			degraded = 1
		}
		snap.Gauges["ccdac_store_degraded"] = degraded
	}
	if s.recorder != nil {
		st := s.recorder.Stats()
		snap.Counters["ccdac_obs_traces_offered_total"] = st.Offered
		snap.Counters["ccdac_obs_traces_evicted_total"] = st.Evicted
		for reason, n := range st.Retained {
			snap.Counters[obs.SeriesKey("ccdac_obs_traces_retained_total",
				obs.Labels{"reason": string(reason)})] = n
		}
		snap.Gauges["ccdac_obs_traces_live"] = float64(st.Live)
		snap.Gauges["ccdac_obs_trace_slow_threshold_seconds"] = st.SlowThresholdSeconds
	}
	bst := s.bus.Stats()
	snap.Counters["ccdac_obs_events_published_total"] = int64(bst.Published)
	snap.Counters["ccdac_obs_events_dropped_total"] = int64(bst.Dropped)
	snap.Gauges["ccdac_obs_event_subscribers"] = float64(bst.Subscribers)
	if s.profcap != nil {
		st := s.profcap.Stats()
		snap.Counters["ccdac_profcap_triggered_total"] = st.Triggered
		snap.Counters["ccdac_profcap_captured_total"] = st.Captured
		snap.Counters["ccdac_profcap_suppressed_busy_total"] = st.SuppressedBusy
		snap.Counters["ccdac_profcap_suppressed_cooldown_total"] = st.SuppressedCooldown
		snap.Counters["ccdac_profcap_over_cap_total"] = st.OverCap
		snap.Counters["ccdac_profcap_errors_total"] = st.Errors
		busy := 0.0
		if s.profcap.Busy() {
			busy = 1
		}
		snap.Gauges["ccdac_profcap_busy"] = busy
	}
	if s.watchdog != nil {
		st := s.watchdog.Stats()
		snap.Counters["ccdac_numeric_runs_total"] = st.Runs
		snap.Counters["ccdac_numeric_failures_total"] = st.Failures
		results, _ := s.watchdog.Snapshot()
		for _, res := range results {
			labels := obs.Labels{"check": res.Name}
			snap.Gauges[obs.SeriesKey("ccdac_numeric_check_drift", labels)] = res.Drift
			ok := 0.0
			if res.OK {
				ok = 1
			}
			snap.Gauges[obs.SeriesKey("ccdac_numeric_check_ok", labels)] = ok
		}
	}
	if s.jobs != nil {
		jst := s.jobs.Stats()
		snap.Gauges["ccdac_jobs_queue_depth"] = float64(jst.QueueDepth)
		snap.Gauges["ccdac_jobs_running"] = float64(jst.Running)
		snap.Gauges["ccdac_jobs_workers"] = float64(jst.Workers)
		snap.Gauges["ccdac_jobs_queue_wait_seconds"] = jst.MeanQueueWaitSeconds
		snap.Gauges["ccdac_jobs_job_seconds_mean"] = jst.MeanJobSeconds
		snap.Counters["ccdac_jobs_submitted_total"] = jst.Submitted
		snap.Counters["ccdac_jobs_done_total"] = jst.Done
		snap.Counters["ccdac_jobs_failed_total"] = jst.Failed
		snap.Counters["ccdac_jobs_canceled_total"] = jst.Canceled
		snap.Counters["ccdac_jobs_overflow_total"] = jst.Overflow
		snap.Counters["ccdac_jobs_groups_total"] = jst.Groups
		snap.Counters["ccdac_jobs_coalesced_total"] = jst.Coalesced
		snap.Counters["ccdac_jobs_prefix_runs_saved_total"] = jst.PrefixRunsSaved
		snap.Counters["ccdac_jobs_checkpoints_total"] = jst.Checkpoints
		snap.Counters["ccdac_jobs_resumed_total"] = jst.Resumed
	}
	snap.Counters["ccdac_serve_access_log_sampled_total"] = s.logsSampled.Load()

	// Content negotiation: scrapers asking for OpenMetrics (Prometheus
	// does, when exemplar ingestion is on) get the exemplar-bearing
	// exposition; everyone else gets the classic text format.
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		if err := obs.WriteOpenMetrics(w, snap); err != nil {
			s.log.Error("metrics write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WritePrometheus(w, snap); err != nil {
		// Headers are out; nothing to do but log — the scraper will see
		// the truncated body fail to parse and retry.
		s.log.Error("metrics write failed", "err", err)
	}
}

// healthzResponse is the liveness payload: the process is up and this
// is what it has been doing.
type healthzResponse struct {
	Status        string         `json:"status"`
	Version       string         `json:"version"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	InFlight      int64          `json:"inflight"`
	Served        int64          `json:"served"`
	MaxInFlight   int            `json:"max_inflight"`
	GoVersion     string         `json:"go_version"`
	Numeric       *numericHealth `json:"numeric,omitempty"`
}

// numericHealth is the healthz numeric-watchdog section: golden
// reference checks on the numeric kernels (CG, Cholesky, LU, the rho
// memo) so silent numerical drift — a miscompiled kernel, a broken
// cache — is visible before it corrupts results.
type numericHealth struct {
	Status   string           `json:"status"` // "ok" or "drift"
	Checks   []numeric.Result `json:"checks"`
	Runs     int64            `json:"runs"`
	Failures int64            `json:"failures"`
	LastRun  time.Time        `json:"last_run"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		Version:       ccdac.Version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      s.inflight.Load(),
		Served:        s.served.Load(),
		MaxInFlight:   s.opts.MaxInFlight,
		GoVersion:     runtime.Version(),
	}
	if s.watchdog != nil {
		s.numericSweep()
		results, lastRun := s.watchdog.Snapshot()
		st := s.watchdog.Stats()
		nh := &numericHealth{
			Status: "ok", Checks: results,
			Runs: st.Runs, Failures: st.Failures, LastRun: lastRun,
		}
		if !s.watchdog.Healthy() {
			nh.Status = "drift"
			resp.Status = "degraded"
		}
		resp.Numeric = nh
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports whether the daemon accepts new work: 200 while
// serving, 503 once draining has begun so load balancers stop routing
// to this instance while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}
