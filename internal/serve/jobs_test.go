package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/jobs"
	"ccdac/internal/leakcheck"
)

func postJob(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJob(t *testing.T, base, id string) jobs.Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, resp.StatusCode, data)
	}
	var j jobs.Job
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("job record: %v: %s", err, data)
	}
	return j
}

// submitJobOK POSTs a spec and asserts the 202 contract: Location
// header, queued (or already further) record with an ID.
func submitJobOK(t *testing.T, base, body string) jobs.Job {
	t.Helper()
	resp, data := postJob(t, base, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d, want 202: %s", resp.StatusCode, data)
	}
	var j jobs.Job
	if err := json.Unmarshal(data, &j); err != nil {
		t.Fatalf("submit response: %v: %s", err, data)
	}
	if j.ID == "" {
		t.Fatalf("submit response has no job ID: %s", data)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, j.ID)
	}
	return j
}

// pollJobDone polls one job until it is terminal and asserts it is
// done.
func pollJobDone(t *testing.T, base, id string, timeout time.Duration) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := getJob(t, base, id)
		if j.State.Terminal() {
			if j.State != jobs.StateDone {
				t.Fatalf("job %s finished %s (%s), want done", id, j.State, j.Error)
			}
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %s", id, j.State, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobSubmitPollResult is the happy-path API contract: 202 with
// Location, polled to done, result payload per kind, 404s for unknown
// IDs, DELETE cancels.
func TestJobSubmitPollResult(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	yj := submitJobOK(t, ts.URL, `{"kind":"yield","bits":5,"samples":80,"seed":2,"spec_inl":0.05}`)
	gj := submitJobOK(t, ts.URL, `{"kind":"generate","bits":4}`)

	done := pollJobDone(t, ts.URL, yj.ID, 60*time.Second)
	var yr jobs.YieldResult
	if err := json.Unmarshal(done.Result, &yr); err != nil {
		t.Fatalf("yield result: %v: %s", err, done.Result)
	}
	if yr.Samples != 80 || yr.SampleHash == "" {
		t.Fatalf("yield result = %d samples, hash %q; want 80 and a sample hash", yr.Samples, yr.SampleHash)
	}
	if done.DoneSamples != 80 {
		t.Fatalf("done_samples = %d, want 80", done.DoneSamples)
	}

	gdone := pollJobDone(t, ts.URL, gj.ID, 60*time.Second)
	var gr jobs.GenerateResult
	if err := json.Unmarshal(gdone.Result, &gr); err != nil {
		t.Fatalf("generate result: %v: %s", err, gdone.Result)
	}
	if gr.Metrics.AreaUm2 <= 0 {
		t.Fatalf("generate metrics = %+v, want a routed area", gr.Metrics)
	}

	// Unknown IDs are 404 on every verb.
	for _, req := range []*http.Request{
		mustReq(t, http.MethodGet, ts.URL+"/v1/jobs/nope", ""),
		mustReq(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", ""),
		mustReq(t, http.MethodGet, ts.URL+"/v1/jobs/nope/events", ""),
	} {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", req.Method, req.URL.Path, resp.StatusCode)
		}
	}

	// Bad specs are 400, not queued.
	resp, data := postJob(t, ts.URL, `{"kind":"yield","bits":6,"samples":10}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("spec-less yield job: status %d, want 400: %s", resp.StatusCode, data)
	}
	resp, data = postJob(t, ts.URL, `{"kind":"yield","bits":6,"samples":10,"spec_inl":0.05,"surprise":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400: %s", resp.StatusCode, data)
	}

	// DELETE cancels a long job.
	lj := submitJobOK(t, ts.URL, `{"kind":"yield","bits":8,"samples":50000000,"spec_inl":0.05,"checkpoint_every":1000}`)
	req := mustReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+lj.ID, "")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d, want 200", dresp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		j := getJob(t, ts.URL, lj.ID)
		if j.State.Terminal() {
			if j.State != jobs.StateCanceled {
				t.Fatalf("deleted job finished %s, want canceled", j.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deleted job never reached a terminal state")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustReq(t *testing.T, method, url, body string) *http.Request {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestJobQueueOverflow429: a full bounded queue answers 429 with the
// queue depth in the body, an honest Retry-After header, and the
// overflow visible in /metrics.
func TestJobQueueOverflow429(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{
		Logger: quietLogger(), JobWorkers: 1, JobQueueDepth: 1,
		JobMaxBatch: 16, JobMaxWait: time.Hour, // park the first job in the coalescer
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	first := submitJobOK(t, ts.URL, `{"kind":"yield","bits":6,"samples":100,"seed":1,"spec_inl":0.05}`)
	resp, data := postJob(t, ts.URL, `{"kind":"yield","bits":6,"samples":100,"seed":2,"spec_inl":0.05}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over capacity: status %d, want 429: %s", resp.StatusCode, data)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Error      string `json:"error"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("429 body: %v: %s", err, data)
	}
	if body.QueueDepth != 1 {
		t.Fatalf("429 queue_depth = %d, want 1: %s", body.QueueDepth, data)
	}
	if !strings.Contains(body.Error, "queue full") {
		t.Fatalf("429 error %q does not mention the full queue", body.Error)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"ccdac_jobs_queue_depth 1",
		"ccdac_jobs_overflow_total 1",
		"ccdac_jobs_submitted_total 1",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Canceling the parked job frees its reservation for the next one.
	req := mustReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, "")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if got := getJob(t, ts.URL, first.ID); got.State != jobs.StateCanceled {
		t.Fatalf("parked job after DELETE = %s, want canceled", got.State)
	}
}

// TestJobEventsSSEChurn: several SSE subscribers — some disconnecting
// early — follow one checkpointed job; every surviving subscriber gets
// the final job_done frame, span events flow, and nothing leaks.
func TestJobEventsSSEChurn(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{Logger: quietLogger(), JobMaxBatch: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	j := submitJobOK(t, ts.URL, `{"kind":"yield","bits":6,"samples":20000,"seed":5,"spec_inl":0.05,"checkpoint_every":500}`)

	type sseResult struct {
		events int
		done   *jobs.Job
		err    error
	}
	readSSE := func(cancelEarly bool) sseResult {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+j.ID+"/events", nil)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		resp, err := http.DefaultClient.Do(req.WithContext(ctx))
		if err != nil {
			return sseResult{err: err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return sseResult{err: fmt.Errorf("status %d", resp.StatusCode)}
		}
		var res sseResult
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		inDone := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "event: job_done":
				inDone = true
			case strings.HasPrefix(line, "event: "):
				res.events++
				if cancelEarly && res.events >= 2 {
					cancel()
					return res
				}
			case inDone && strings.HasPrefix(line, "data: "):
				var job jobs.Job
				if err := json.Unmarshal([]byte(line[len("data: "):]), &job); err != nil {
					return sseResult{err: err}
				}
				res.done = &job
				return res
			}
		}
		res.err = sc.Err()
		return res
	}

	const full, early = 3, 3
	results := make([]sseResult, full+early)
	var wg sync.WaitGroup
	for i := 0; i < full+early; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = readSSE(i >= full)
		}(i)
	}
	wg.Wait()

	spanEvents := 0
	for i, r := range results[:full] {
		if r.err != nil {
			t.Fatalf("subscriber %d: %v", i, r.err)
		}
		if r.done == nil {
			t.Fatalf("subscriber %d never received job_done", i)
		}
		if r.done.State != jobs.StateDone {
			t.Fatalf("subscriber %d job_done state = %s (%s), want done", i, r.done.State, r.done.Error)
		}
		spanEvents += r.events
	}
	if spanEvents == 0 {
		t.Error("no subscriber saw a single span event before job_done")
	}
	// The server-side record agrees with the streamed terminal one.
	if j := getJob(t, ts.URL, j.ID); j.State != jobs.StateDone || j.DoneSamples != 20000 {
		t.Fatalf("record after SSE churn = %s with %d samples, want done with 20000", j.State, j.DoneSamples)
	}
}

// TestBatchSharesJobWorkerBudget: /v1/batch items admit through
// jobs.Manager.Do. With the single worker slot held, the whole batch
// parks until the slot frees — the fix for the old scheme where every
// batch privately fanned out MaxInFlight goroutines.
func TestBatchSharesJobWorkerBudget(t *testing.T) {
	defer leakcheck.Check(t)()
	srv := New(Options{Logger: quietLogger(), JobWorkers: 1, MaxInFlight: 8, CacheMaxBytes: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	const hold = 300 * time.Millisecond
	held := make(chan struct{})
	release := make(chan struct{})
	var doWG sync.WaitGroup
	doWG.Add(1)
	go func() {
		defer doWG.Done()
		srv.Jobs().Do(context.Background(), func() error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	time.AfterFunc(hold, func() { close(release) })

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"requests":[{"bits":4,"skip_nonlinearity":true},{"bits":5,"skip_nonlinearity":true}]}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	doWG.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 2 {
		t.Fatalf("batch items = %d, want 2", len(br.Items))
	}
	for i, it := range br.Items {
		if it.Status != http.StatusOK || it.Response == nil {
			t.Fatalf("item %d = status %d (%s), want 200", i, it.Status, it.Error)
		}
	}
	if elapsed < hold-50*time.Millisecond {
		t.Fatalf("batch finished in %s while the only worker slot was held for %s — batch is not drawing from the shared budget", elapsed, hold)
	}
}

// TestJobCrashResume is the crash-recovery acceptance bar, end to end:
// a daemon process running a checkpointed Monte-Carlo yield job is
// killed with SIGKILL mid-run; a fresh process over the same store
// directory auto-resumes the job from its last durable checkpoint and
// finishes with a payload byte-identical — same sample hash — to an
// uninterrupted run of the same spec.
func TestJobCrashResume(t *testing.T) {
	if dir := os.Getenv("JOBS_CRASH_DIR"); dir != "" {
		jobsCrashChild(dir)
		return // unreachable: the child serves until killed
	}
	const specBody = `{"kind":"yield","bits":8,"samples":60000,"seed":11,"spec_inl":0.05,"checkpoint_every":1000}`

	// Reference: the same spec, uninterrupted, in this process.
	refSrv := New(Options{Logger: quietLogger()})
	tsRef := httptest.NewServer(refSrv.Handler())
	refJob := submitJobOK(t, tsRef.URL, specBody)
	ref := pollJobDone(t, tsRef.URL, refJob.ID, 120*time.Second)
	tsRef.Close()
	refSrv.Close()

	base := t.TempDir()
	dir := filepath.Join(base, "store")
	addrFile := filepath.Join(base, "addr")
	cmd := exec.Command(os.Args[0], "-test.run=^TestJobCrashResume$", "-test.v")
	cmd.Env = append(os.Environ(), "JOBS_CRASH_DIR="+dir, "JOBS_CRASH_ADDR="+addrFile)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for addr == "" {
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crash child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	childURL := "http://" + addr

	j := submitJobOK(t, childURL, specBody)
	deadline = time.Now().Add(60 * time.Second)
	for {
		got := getJob(t, childURL, j.ID)
		if got.State.Terminal() {
			t.Fatalf("child job reached %s before the kill; lower checkpoint_every", got.State)
		}
		if got.Checkpoints >= 3 {
			break // demonstrably mid-run with durable progress
		}
		if time.Now().After(deadline) {
			t.Fatalf("child job never checkpointed (state %s, %d done)", got.State, got.DoneSamples)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// A fresh process over the crashed store resumes the job by itself.
	srv2 := New(Options{Logger: quietLogger(), StoreDir: dir})
	defer srv2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	j2, err := srv2.Jobs().Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("waiting for resumed job: %v (state %s)", err, j2.State)
	}
	if j2.State != jobs.StateDone {
		t.Fatalf("resumed job finished %s (%s), want done", j2.State, j2.Error)
	}
	if !j2.Resumed {
		t.Error("resumed job does not report resumed=true")
	}
	if j2.DoneSamples != 60000 {
		t.Errorf("resumed job done_samples = %d, want 60000", j2.DoneSamples)
	}
	// The HTTP handler re-indents payloads; compare the canonical bytes.
	var refC, resC bytes.Buffer
	if err := json.Compact(&refC, ref.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&resC, j2.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refC.Bytes(), resC.Bytes()) {
		t.Fatalf("resumed result differs from uninterrupted run:\nref:     %s\nresumed: %s", refC.Bytes(), resC.Bytes())
	}
	var yr jobs.YieldResult
	if err := json.Unmarshal(j2.Result, &yr); err != nil {
		t.Fatal(err)
	}
	if yr.SampleHash == "" {
		t.Fatal("resumed result carries no sample hash")
	}
	t.Logf("resumed after SIGKILL with %d checkpoints banked; hash %s matches uninterrupted run", j2.Checkpoints, yr.SampleHash)
}

// jobsCrashChild is the re-exec'd child of TestJobCrashResume: a real
// daemon over the given store directory, address published atomically,
// serving until the parent kills the process.
func jobsCrashChild(dir string) {
	srv := New(Options{Logger: quietLogger(), StoreDir: dir})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jobs crash child:", err)
		os.Exit(1)
	}
	addrFile := os.Getenv("JOBS_CRASH_ADDR")
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err == nil {
		os.Rename(tmp, addrFile)
	}
	http.Serve(ln, srv.Handler())
}

// TestJobRecordsSurviveRestart: terminal job records — not just
// interrupted ones — persist across a clean restart and stay
// queryable, result intact.
func TestJobRecordsSurviveRestart(t *testing.T) {
	defer leakcheck.Check(t)()
	dir := t.TempDir()
	srv1 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	j := submitJobOK(t, ts1.URL, `{"kind":"yield","bits":5,"samples":60,"seed":4,"spec_inl":0.05}`)
	done := pollJobDone(t, ts1.URL, j.ID, 60*time.Second)
	srv1.Close() // flushes the write-behind persister
	ts1.Close()

	srv2 := New(Options{Logger: quietLogger(), StoreDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	got := getJob(t, ts2.URL, j.ID)
	if got.State != jobs.StateDone {
		t.Fatalf("restored record state = %s, want done", got.State)
	}
	if !bytes.Equal(got.Result, done.Result) {
		t.Fatalf("restored result differs:\nbefore: %s\nafter:  %s", done.Result, got.Result)
	}
}
