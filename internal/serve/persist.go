// Durable result persistence (write-behind): cold generate results are
// serialized and queued for the artifact store off the request path, so
// a request never blocks on disk and a daemon restart finds the result
// cache warm (docs/ROBUSTNESS.md, "Durable artifact store"). Each
// persisted artifact also appends a hash-chained provenance record
// (request config, seed, toolchain, code revision), making stored
// results tamper-evident and reproducible.
package serve

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"ccdac/internal/store"
)

// persistJob is one finished cold generation — or one tail-sampled
// trace (traceID set, key empty) — awaiting durability.
type persistJob struct {
	key string
	req GenerateRequest
	cr  *cachedResult

	// traceID/trace carry a retained trace's OTLP blob instead of a
	// result.
	traceID string
	trace   []byte

	// blobKey/blob carry an arbitrary indexed artifact (e.g. a captured
	// profile) instead of a result; blobMeta is its provenance config.
	blobKey  string
	blob     []byte
	blobMeta string
}

// persister drains persist jobs through one background goroutine into
// the artifact store. Enqueue never blocks: a full queue drops the job
// (the result is still served and cached in memory; only durability is
// lost) and counts the drop.
type persister struct {
	st      *store.Store
	ch      chan persistJob
	mu      sync.Mutex
	closed  bool
	pending sync.WaitGroup // in-queue jobs, for Flush
	done    chan struct{}
	dropped atomic.Int64
}

func newPersister(st *store.Store, queue int) *persister {
	if queue <= 0 {
		queue = 256
	}
	p := &persister{st: st, ch: make(chan persistJob, queue), done: make(chan struct{})}
	go p.loop()
	return p
}

func (p *persister) loop() {
	defer close(p.done)
	for job := range p.ch {
		p.persist(job)
		p.pending.Done()
	}
}

// persist makes one result durable: artifact blob, index entry, and
// provenance link. Store-level failures degrade inside the store (it
// flips memory-only); nothing here can fail a request.
func (p *persister) persist(job persistJob) {
	if job.blobKey != "" {
		p.persistBlob(job)
		return
	}
	if job.traceID != "" {
		p.persistTrace(job)
		return
	}
	data, err := json.Marshal(job.cr)
	if err != nil {
		return
	}
	hash, err := p.st.Put(data)
	if err != nil {
		return
	}
	if err := p.st.SetIndex(job.key, hash); err != nil {
		return
	}
	cfg, _ := json.Marshal(job.req)
	_, _ = p.st.AppendProvenance(store.ProvenanceRecord{
		Key:        job.key,
		Artifact:   hash,
		ConfigJSON: string(cfg),
		Seed:       job.req.AnnealSeed,
		GoVersion:  runtime.Version(),
		CodeHash:   codeHash(),
	})
}

// persistTrace stores one tail-sampled trace's OTLP export: blob,
// trace/<id> index entry, and a provenance record tying the trace to
// the request config that produced it.
func (p *persister) persistTrace(job persistJob) {
	hash, err := p.st.Put(job.trace)
	if err != nil {
		return
	}
	key := traceIndexKey(job.traceID)
	if err := p.st.SetIndex(key, hash); err != nil {
		return
	}
	cfg, _ := json.Marshal(job.req)
	_, _ = p.st.AppendProvenance(store.ProvenanceRecord{
		Key:        key,
		Artifact:   hash,
		ConfigJSON: string(cfg),
		Seed:       job.req.AnnealSeed,
		GoVersion:  runtime.Version(),
		CodeHash:   codeHash(),
	})
}

// persistBlob stores one generic indexed artifact — captured profiles
// under profile/<traceID>/<kind>, job records and the job manifest —
// with a provenance record when metadata accompanies it. Blobs with
// empty blobMeta (high-churn records like the job manifest) skip the
// provenance chain.
func (p *persister) persistBlob(job persistJob) {
	hash, err := p.st.Put(job.blob)
	if err != nil {
		return
	}
	if err := p.st.SetIndex(job.blobKey, hash); err != nil {
		return
	}
	if job.blobMeta == "" {
		return
	}
	_, _ = p.st.AppendProvenance(store.ProvenanceRecord{
		Key:        job.blobKey,
		Artifact:   hash,
		ConfigJSON: job.blobMeta,
		GoVersion:  runtime.Version(),
		CodeHash:   codeHash(),
	})
}

// enqueue queues one job, dropping (and counting) when the queue is
// full or the persister is closed.
func (p *persister) enqueue(job persistJob) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.dropped.Add(1)
		return
	}
	p.pending.Add(1)
	select {
	case p.ch <- job:
	default:
		p.pending.Done()
		p.dropped.Add(1)
	}
}

// flush blocks until every queued job has been persisted.
func (p *persister) flush() { p.pending.Wait() }

// close flushes and stops the background goroutine. Safe to call more
// than once; enqueues after close drop.
func (p *persister) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.flush()
	close(p.ch)
	<-p.done
}

// codeHash identifies the running code revision from build info (VCS
// stamp when built from a checkout, module version otherwise).
func codeHash() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "unknown"
}
