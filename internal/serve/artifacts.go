package serve

import (
	"errors"
	"fmt"
	"net/http"

	"ccdac/internal/store"
)

// handleArtifact is GET /v1/artifacts/{hash}: it serves the raw bytes
// of one stored artifact by content hash, after the store re-verifies
// the hash on read. A blob that fails verification has just been
// quarantined — the client gets an error, never corrupt bytes.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("serve: artifact store not configured (start with -store-dir)"))
		return
	}
	hash := r.PathValue("hash")
	if !validHash(hash) {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("serve: malformed artifact hash %q (want 64 hex characters)", hash))
		return
	}
	data, err := s.store.Get(hash)
	switch {
	case errors.Is(err, store.ErrNotFound):
		s.writeError(w, r, http.StatusNotFound, err)
		return
	case errors.Is(err, store.ErrCorrupt):
		s.reg.Counter("ccdac_serve_artifact_corrupt_total", nil).Inc()
		s.writeError(w, r, http.StatusBadGateway, err)
		return
	case err != nil:
		s.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", `"`+hash+`"`)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// validHash reports whether h looks like a SHA-256 content address.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for _, c := range h {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}
