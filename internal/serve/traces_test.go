package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ccdac/internal/leakcheck"
	"ccdac/internal/obs"
)

// coreStages are the pipeline phases every successful generate runs;
// the SSE acceptance test requires a start and end event for each.
var coreStages = []string{"placement", "routing", "extraction", "analysis"}

// sseCollect reads Server-Sent Events from body until an event of type
// stopAt arrives (or the stream ends), decoding each data payload as an
// obs.Event. Comment lines (heartbeats) are skipped.
func sseCollect(t *testing.T, body io.Reader, stopAt obs.EventType) []obs.Event {
	t.Helper()
	var out []obs.Event
	var data string
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var ev obs.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			out = append(out, ev)
			data = ""
			if ev.Type == stopAt {
				return out
			}
		}
	}
	return out
}

// waitSubscribers polls until the bus reports n subscribers, so tests
// know the SSE stream is armed before firing the request.
func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.bus.Stats().Subscribers < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("bus never reached %d subscribers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEventsSSEStreamsLiveSpans is the end-to-end acceptance test: a
// client subscribed to /v1/events for an in-flight 10-bit generate
// receives ordered span start/end events for every core pipeline stage,
// delivered over the live stream (the stream closes itself at the
// request's trace_finish, which the server emits before it writes the
// response).
func TestEventsSSEStreamsLiveSpans(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const reqID = "sse-e2e-1"
	sseResp, err := http.Get(ts.URL + "/v1/events?request_id=" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	waitSubscribers(t, srv, 1)

	events := make(chan []obs.Event, 1)
	go func() { events <- sseCollect(t, sseResp.Body, obs.EventTraceFinish) }()

	req, _ := http.NewRequest("POST", ts.URL+"/v1/generate",
		strings.NewReader(`{"bits":10,"cache":"bypass"}`))
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status = %d", resp.StatusCode)
	}

	var evs []obs.Event
	select {
	case evs = <-events:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream never delivered trace_finish")
	}
	if len(evs) == 0 || evs[len(evs)-1].Type != obs.EventTraceFinish {
		t.Fatalf("stream did not end at trace_finish: %+v", evs)
	}
	var lastSeq uint64
	started := map[string]int{}
	ended := map[string]int{}
	for i, ev := range evs {
		if ev.Tag != reqID {
			t.Errorf("event %d leaked from another request: %+v", i, ev)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d: seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case obs.EventSpanStart:
			if _, dup := started[ev.Name]; !dup {
				started[ev.Name] = i
			}
		case obs.EventSpanEnd:
			ended[ev.Name] = i
		}
	}
	for _, stage := range coreStages {
		si, sok := started[stage]
		ei, eok := ended[stage]
		if !sok || !eok {
			t.Errorf("stage %q missing span events (start=%v end=%v)", stage, sok, eok)
			continue
		}
		if si >= ei {
			t.Errorf("stage %q end (event %d) not after start (event %d)", stage, ei, si)
		}
	}
	if _, ok := started["serve.generate"]; !ok {
		t.Error("root serve.generate span_start missing")
	}
}

func TestTraceIndexAndGet(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postGenerate(t, ts.URL, `{"bits":6,"cache":"bypass"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status = %d", resp.StatusCode)
	}

	r, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var idx traceIndexResponse
	if err := json.NewDecoder(r.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(idx.Traces) == 0 || idx.Stats.Offered == 0 {
		t.Fatalf("index empty after a generate: %+v", idx)
	}
	sum := idx.Traces[0]
	if sum.ID == "" || sum.Reason == "" || sum.Spans == 0 {
		t.Fatalf("index row incomplete: %+v", sum)
	}

	// Native JSON form: full span tree.
	r, err = http.Get(ts.URL + "/debug/traces/" + sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	var full traceResponse
	if err := json.NewDecoder(r.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if full.TraceID != sum.ID || len(full.Spans) != sum.Spans {
		t.Fatalf("trace body mismatch: %+v vs index %+v", full, sum)
	}

	// OTLP form: a resourceSpans export carrying the same trace ID.
	r, err = http.Get(ts.URL + "/debug/traces/" + sum.ID + "?format=otlp")
	if err != nil {
		t.Fatal(err)
	}
	otlp, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var doc map[string]any
	if err := json.Unmarshal(otlp, &doc); err != nil {
		t.Fatalf("OTLP body not JSON: %v", err)
	}
	if _, ok := doc["resourceSpans"]; !ok {
		t.Fatalf("OTLP body missing resourceSpans: %s", otlp)
	}
	if !bytes.Contains(otlp, []byte(sum.ID)) {
		t.Error("OTLP export missing the trace ID")
	}

	for path, want := range map[string]int{
		"/debug/traces/nosuchtrace":               http.StatusNotFound,
		"/debug/traces/" + sum.ID + "?format=xml": http.StatusBadRequest,
	} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, r.StatusCode, want)
		}
	}
}

func TestTraceRecorderDisabled(t *testing.T) {
	srv := New(Options{TraceCapacity: -1, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postGenerate(t, ts.URL, `{"bits":6}`)
	r, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("disabled recorder index = %d, want 404", r.StatusCode)
	}
}

// TestExemplarsInOpenMetrics: a request retained by the recorder must
// leave a trace_id exemplar on its latency bucket — but only in the
// OpenMetrics exposition; the classic Prometheus format must stay
// exemplar-free.
func TestExemplarsInOpenMetrics(t *testing.T) {
	srv := New(Options{Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postGenerate(t, ts.URL, `{"bits":6,"cache":"bypass"}`)

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	om := string(body)
	if !strings.Contains(r.Header.Get("Content-Type"), "application/openmetrics-text") {
		t.Errorf("OM content type = %q", r.Header.Get("Content-Type"))
	}
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF trailer")
	}
	exemplared := false
	for _, line := range strings.Split(om, "\n") {
		if strings.HasPrefix(line, "ccdac_serve_request_seconds_bucket") && strings.Contains(line, `# {trace_id="`) {
			exemplared = true
		}
	}
	if !exemplared {
		t.Errorf("no exemplar on any request_seconds bucket:\n%s", om)
	}
	if !strings.Contains(om, "ccdac_obs_traces_offered_total") {
		t.Error("recorder stats missing from exposition")
	}
	if !strings.Contains(om, "ccdac_build_info{") {
		t.Error("build info gauge missing from exposition")
	}

	// Plain scrape: classic format, no exemplar syntax, no EOF.
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if s := string(body); strings.Contains(s, "# {trace_id") || strings.Contains(s, "# EOF") {
		t.Error("plain Prometheus exposition leaked OpenMetrics syntax")
	}
}

func TestSlowRequestLogsWarn(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	// Any real generate exceeds a 1ns threshold.
	srv := New(Options{SlowRequest: time.Nanosecond, Logger: logger})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postGenerate(t, ts.URL, `{"bits":6,"cache":"bypass"}`)

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	found := false
	for _, line := range strings.Split(logs, "\n") {
		if !strings.Contains(line, `"slow request"`) {
			continue
		}
		var entry map[string]any
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if entry["route"] != "generate" {
			continue
		}
		found = true
		if entry["level"] != "WARN" {
			t.Errorf("slow request level = %v, want WARN", entry["level"])
		}
		if id, _ := entry["trace_id"].(string); len(id) != 32 {
			t.Errorf("slow request trace_id = %v, want retained 32-hex ID", entry["trace_id"])
		}
		if _, ok := entry["span_id"]; !ok {
			t.Error("slow request log missing root span_id")
		}
	}
	if !found {
		t.Fatalf("no slow-request WARN for the generate route:\n%s", logs)
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// TestTracePersistence: traces retained for cause (here: a pipeline
// error) are durably persisted as OTLP blobs in the artifact store,
// indexed under trace/<id>, and surfaced as artifact_hash in
// /debug/traces/{id} — servable back via /v1/artifacts/{hash}.
func TestTracePersistence(t *testing.T) {
	srv := New(Options{StoreDir: t.TempDir(), Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// An invalid config errors inside the pipeline: the trace is
	// retained with reason "error" and queued for persistence.
	resp, _ := postGenerate(t, ts.URL, `{"bits":99}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config status = %d, want 400", resp.StatusCode)
	}
	srv.FlushStore()

	var errored *obs.TraceSummary
	for _, sum := range srv.recorder.List() {
		if sum.Reason == obs.ReasonError {
			errored = &sum
			break
		}
	}
	if errored == nil {
		t.Fatal("errored trace not retained")
	}
	hash, ok := srv.store.LookupIndex(traceIndexKey(errored.ID))
	if !ok {
		t.Fatal("errored trace not indexed in the store")
	}

	r, err := http.Get(ts.URL + "/debug/traces/" + errored.ID)
	if err != nil {
		t.Fatal(err)
	}
	var full traceResponse
	if err := json.NewDecoder(r.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if full.ArtifactHash != hash {
		t.Errorf("artifact_hash = %q, want %q", full.ArtifactHash, hash)
	}
	if full.Err == "" || full.Reason != obs.ReasonError {
		t.Errorf("persisted trace lost its error classification: %+v", full)
	}

	// The durable blob is the OTLP export, servable by hash.
	r, err = http.Get(ts.URL + "/v1/artifacts/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch = %d", r.StatusCode)
	}
	if !bytes.Contains(blob, []byte("resourceSpans")) || !bytes.Contains(blob, []byte(errored.ID)) {
		t.Error("stored artifact is not the trace's OTLP export")
	}
}

// TestMergeAndSSEChurnUnderLoad runs concurrent generates, /metrics
// scrapes (both formats), and SSE subscriber churn together — the
// -race matrix entry for the whole telemetry pipeline. Totals must
// reconcile after the dust settles.
func TestMergeAndSSEChurnUnderLoad(t *testing.T) {
	defer leakcheck.Check(t)()
	const requests = 24
	srv := New(Options{MaxInFlight: requests, CacheMaxBytes: -1, Logger: quietLogger()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var churn sync.WaitGroup
	// Scrapers alternate Prometheus and OpenMetrics.
	for i := 0; i < 2; i++ {
		churn.Add(1)
		go func(om bool) {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
				if om {
					req.Header.Set("Accept", "application/openmetrics-text")
				}
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
			}
		}(i == 0)
	}
	// SSE subscribers connect, read briefly, and drop mid-stream; the
	// context deadline bounds each connection so an idle stream (no
	// events between heartbeats) never stalls the churn loop.
	for i := 0; i < 4; i++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/events", nil)
				if r, err := http.DefaultClient.Do(req); err == nil {
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
				}
				cancel()
			}
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postGenerate(t, ts.URL,
				fmt.Sprintf(`{"bits":%d,"cache":"bypass"}`, 4+i%3))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("generate %d status = %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	snap := srv.Registry().Snapshot()
	if got := snap.Counter("ccdac_serve_requests_total", obs.Labels{"route": "generate", "code": "200"}); got != requests {
		t.Errorf("request counter = %d, want %d", got, requests)
	}
	if st := srv.recorder.Stats(); st.Offered != requests {
		t.Errorf("recorder offered = %d, want %d", st.Offered, requests)
	}
	// Disconnected SSE handlers unsubscribe asynchronously; give them a
	// moment before calling a lingering subscription a leak.
	deadline := time.Now().Add(5 * time.Second)
	for srv.bus.Stats().Subscribers != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if st := srv.bus.Stats(); st.Subscribers != 0 {
		t.Errorf("%d SSE subscribers leaked", st.Subscribers)
	}
}
