// Serve-side result caching (docs/PERFORMANCE.md, "Serve-side result
// cache"): a byte-bounded LRU of finished generate results keyed by the
// canonicalized request, fronted by a singleflight layer that collapses
// concurrent identical requests into one generation.
//
// Cancellation semantics: the generation runs detached from any single
// request's context, bounded only by the server's RequestTimeout. A
// client that gives up merely unsubscribes; the flight is aborted only
// when its last subscriber leaves, so a canceled leader hands the work
// off to the followers instead of poisoning them with its cancellation.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"time"

	"ccdac"
	"ccdac/internal/memo"
	"ccdac/internal/obs"
)

// cachedResult is the cacheable portion of a generate response: the
// deterministic outputs, none of the per-request envelope.
type cachedResult struct {
	Metrics  ccdac.Metrics
	Warnings []string
}

// bytes estimates the entry's cache charge.
func (c *cachedResult) bytes() int64 {
	n := int64(320) + int64(len(c.Metrics.ParallelWires))*8
	for _, w := range c.Warnings {
		n += int64(len(w)) + 16
	}
	return n
}

// genOutcome is what one generate execution path hands the HTTP layer.
type genOutcome struct {
	metrics  ccdac.Metrics
	warnings []string
	// counters is the run's private counter snapshot, nil when no
	// generation ran on behalf of this request (cache hit, shared
	// flight) — responses must not report counters that were merged
	// into the global registry by some other request's run.
	counters map[string]int64
	status   string // "" | "cold" | "hit" | "shared" | "bypass"
}

// flight is one in-progress generation shared by every concurrent
// request for the same canonical key.
type flight struct {
	done   chan struct{} // closed after out/err are set and the flight left the map
	cancel context.CancelFunc
	subs   int // subscriber count, guarded by Server.flightMu
	out    *genOutcome
	err    error
}

// cacheKey canonicalizes a generate request into a content-addressed
// key: defaults are made explicit, fields the selected style ignores
// are zeroed, and fields that cannot change the result (worker budget,
// cache directive) are excluded — so bodies that differ only in JSON
// field order, omitted defaults, or irrelevant knobs share one entry.
func cacheKey(req GenerateRequest) string {
	n := req
	n.Workers = 0 // results are identical at any worker count
	n.Cache = ""
	if n.Style == "" {
		n.Style = string(ccdac.Spiral)
	}
	if n.TechNode == "" {
		n.TechNode = "finfet12"
	}
	if n.SkipNonlinearity {
		n.ThetaSteps = 0 // theta sweep never runs
	} else if n.ThetaSteps == 0 {
		n.ThetaSteps = 8 // pipeline default
	}
	if n.MaxParallel <= 1 {
		n.MaxParallel = 0 // both mean "parallel routing off"
	}
	if n.BestBC {
		// GenerateBestBC forces the style and sweeps the structure grid
		// itself; the request's style and BC fields are ignored.
		n.Style = string(ccdac.BlockChessboard)
		n.CoreBits, n.BlockCells = 0, 0
	}
	if n.Style != string(ccdac.BlockChessboard) {
		n.CoreBits, n.BlockCells = 0, 0
	}
	if n.Style != string(ccdac.Annealed) {
		n.AnnealSeed, n.AnnealMoves = 0, 0
	}
	if n.FFT == "" {
		n.FFT = "auto" // pipeline default
	}
	// v2: the fft directive joined the key — the engines agree only to
	// tolerance, so their results must not share cache entries.
	return memo.NewKey("serve/generate/v2").
		Int(n.Bits).Str(n.Style).Int(n.CoreBits).Int(n.BlockCells).
		Int(n.MaxParallel).I64(n.AnnealSeed).Int(n.AnnealMoves).
		Int(n.ThetaSteps).Bool(n.SkipNonlinearity).Str(n.TechNode).
		Bool(n.BestBC).Str(n.FFT).Sum()
}

// generate routes one request through the cache and singleflight
// layers. ri (may be nil) receives the root span ID of whatever run
// this request observes, for access-log correlation.
func (s *Server) generate(ctx context.Context, req GenerateRequest, cfg ccdac.Config, ri *reqInfo) (*genOutcome, error) {
	if s.cache == nil {
		// Caching disabled server-wide: the pre-cache behavior, verbatim.
		return s.run(ctx, req, cfg, "", ri)
	}
	if req.Cache == "bypass" {
		// An explicit bypass recomputes for real: no result cache, no
		// flight sharing, no stage memoization.
		return s.run(ctx, req, cfg, "bypass", ri)
	}
	key := cacheKey(req)
	if v, ok := s.cache.Get(key); ok {
		cr := v.(*cachedResult)
		return &genOutcome{metrics: cr.Metrics, warnings: cr.Warnings, status: "hit"}, nil
	}
	if out, ok := s.storeLookup(key); ok {
		// Warm restart: the durable tier has this result from a previous
		// process. It re-enters the memory cache on the way out.
		return out, nil
	}

	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		f.subs++
		s.flightMu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			s.reg.Counter("ccdac_serve_singleflight_shared_total", nil).Inc()
			return &genOutcome{metrics: f.out.metrics, warnings: f.out.warnings, status: "shared"}, nil
		case <-ctx.Done():
			s.leave(key, f)
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{}), subs: 1}
	// The flight is deliberately detached from the leader's context: it
	// must survive the leader canceling while followers still wait. The
	// server's per-request timeout bounds it instead.
	fctx, cancel := context.WithTimeout(context.Background(), s.opts.RequestTimeout)
	f.cancel = cancel
	s.flights[key] = f
	s.flightMu.Unlock()

	go s.runFlight(fctx, key, f, req, cfg, ri)

	select {
	case <-f.done:
		return f.out, f.err
	case <-ctx.Done():
		s.leave(key, f)
		return nil, ctx.Err()
	}
}

// leave unsubscribes one waiter from a flight; the last one out aborts
// the generation and frees the key for future requests.
func (s *Server) leave(key string, f *flight) {
	s.flightMu.Lock()
	f.subs--
	if f.subs == 0 {
		if s.flights[key] == f {
			delete(s.flights, key)
		}
		f.cancel()
	}
	s.flightMu.Unlock()
}

// runFlight executes the shared generation. Completion order matters:
// the result is cached before the flight leaves the map (a request
// arriving in between finds the cache entry), and the flight leaves
// the map before done is closed (a waiter that saw done closed never
// races a half-finished map entry).
func (s *Server) runFlight(ctx context.Context, key string, f *flight, req GenerateRequest, cfg ccdac.Config, ri *reqInfo) {
	defer f.cancel()
	// Cold flights arm the stage caches: overlapping configurations
	// (same placement under different theta counts, same layout under a
	// different tech node) reuse intermediates across flights.
	cfg.Memo = true
	out, err := s.run(ctx, req, cfg, "cold", ri)
	if err == nil {
		cr := &cachedResult{Metrics: out.metrics, Warnings: out.warnings}
		s.cache.Put(key, cr, cr.bytes())
		if s.persist != nil {
			// Write-behind: durability happens off the request path; a
			// full queue or a down disk costs persistence, never latency
			// or the request itself.
			s.persist.enqueue(persistJob{key: key, req: req, cr: cr})
		}
	}
	f.out, f.err = out, err
	s.flightMu.Lock()
	if s.flights[key] == f {
		delete(s.flights, key)
	}
	s.flightMu.Unlock()
	close(f.done)
}

// run executes one generation under its own request-private trace and
// folds the trace's metrics into the process registry — on success, on
// pipeline failure, and on cancellation alike, so partial effort is
// never invisible to /metrics. The finished trace is offered to the
// flight recorder (tail sampling decides whether it survives) and, when
// retained for cause, persisted to the artifact store as an OTLP blob.
func (s *Server) run(ctx context.Context, req GenerateRequest, cfg ccdac.Config, status string, ri *reqInfo) (*genOutcome, error) {
	tr := obs.New(obs.Options{PprofLabels: true})
	if ri != nil {
		// The request ID is the trace's correlation tag: it is what
		// /v1/events subscribers filter on.
		tr.SetTag(ri.id)
	}
	tr.AttachBus(s.bus)
	ctx = obs.WithTrace(ctx, tr)
	start := time.Now()
	ctx, root := obs.StartSpan(ctx, "serve.generate")
	if ri != nil {
		root.SetAttr("request_id", ri.id)
		ri.spanID.Store(root.ID())
	}
	if status != "" {
		root.SetAttr("cache", status)
	}

	var res *ccdac.Result
	var err error
	if req.BestBC {
		res, _, err = ccdac.GenerateBestBCContext(ctx, cfg)
	} else {
		res, err = ccdac.GenerateContext(ctx, cfg)
	}

	root.Fail(err)
	root.End()
	tr.Finish()
	snap := tr.Registry().Snapshot()
	s.reg.Merge(snap)
	s.record(tr, req, start, err, res, ri)
	if s.onTrace != nil {
		s.onTrace(tr)
	}
	if err != nil {
		return nil, err
	}
	return &genOutcome{
		metrics:  res.Metrics,
		warnings: res.Warnings,
		counters: snap.Counters,
		status:   status,
	}, nil
}

// record offers the finished trace to the flight recorder, publishes
// the retention decision to the request (for exemplars and the slow-
// request log), and queues interesting traces — anything retained for
// cause, not merely recency — for durable OTLP persistence.
func (s *Server) record(tr *obs.Trace, req GenerateRequest, start time.Time, err error, res *ccdac.Result, ri *reqInfo) {
	if s.recorder == nil {
		return
	}
	rt := obs.RecordedTrace{
		ID: tr.ID(), Tag: tr.Tag(), Name: "serve.generate",
		Start: start, Duration: time.Since(start),
		Spans: tr.Spans(),
	}
	if err != nil {
		rt.Err = err.Error()
		var pe *ccdac.PipelineError
		if errors.As(err, &pe) {
			rt.Warnings = len(pe.Warnings)
		}
	} else if res != nil {
		rt.Warnings = len(res.Warnings)
	}
	reason := s.recorder.Offer(rt)
	if ri != nil {
		ri.trace.Store(&traceRef{id: rt.ID, reason: reason})
	}
	if s.persist != nil && reason != obs.ReasonRecent {
		var buf bytes.Buffer
		if obs.WriteOTLP(&buf, "ccdacd", rt.ID, rt.Spans) == nil {
			s.persist.enqueue(persistJob{traceID: rt.ID, trace: buf.Bytes(), req: req})
		}
	}
	// A for-cause retention also arms a triggered profile capture: the
	// condition that made this trace interesting (slow path, error) is
	// likely still hot, and the capturer's busy/cooldown gates keep a
	// burst of retentions from costing more than one window. A
	// triggered capture's only consumer is the artifact store — without
	// one there is nowhere to put the profile, so triggers stay
	// disarmed and only the manual POST /debug/profile path (which
	// returns artifacts in the response body) remains.
	if s.profcap != nil && s.persist != nil && reason != obs.ReasonRecent {
		s.profcap.Trigger(string(reason), rt.ID, s.persistCapture)
	}
}

// cacheStats surfaces the result cache and singleflight state for
// /metrics injection and tests.
func (s *Server) cacheStats() (memo.Stats, bool) {
	if s.cache == nil {
		return memo.Stats{}, false
	}
	return s.cache.Stats(), true
}

// storeLookup consults the durable tier for a previously persisted
// result: index key → artifact hash → verified blob → cachedResult.
// Any failure — missing, corrupt (the store quarantines it), or
// unparseable — reports a miss and the pipeline recomputes; the store
// can lose data safely, it can only never serve bad data.
func (s *Server) storeLookup(key string) (*genOutcome, bool) {
	if s.store == nil {
		return nil, false
	}
	hash, ok := s.store.LookupIndex(key)
	if !ok {
		return nil, false
	}
	data, err := s.store.Get(hash)
	if err != nil {
		return nil, false
	}
	cr := new(cachedResult)
	if json.Unmarshal(data, cr) != nil {
		return nil, false
	}
	s.cache.Put(key, cr, cr.bytes())
	return &genOutcome{metrics: cr.Metrics, warnings: cr.Warnings, status: "hit"}, true
}
