package core

import (
	"testing"
	"time"

	"ccdac/internal/place"
)

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunSpiralComplete(t *testing.T) {
	r := run(t, Config{Bits: 6, Style: place.Spiral, MaxParallel: 2})
	if r.Placement == nil || r.Layout == nil || r.Electrical == nil || r.NL == nil {
		t.Fatal("incomplete result")
	}
	if r.F3dBHz <= 0 {
		t.Fatal("non-positive f3dB")
	}
	if r.NL.MaxAbsINL > 0.5 || r.NL.MaxAbsDNL > 0.5 {
		t.Errorf("6-bit spiral INL/DNL out of spec: %+v", r.NL)
	}
	if r.CriticalBit < 0 || r.CriticalBit > 6 {
		t.Errorf("critical bit %d out of range", r.CriticalBit)
	}
}

func TestParallelIterationPromotesCriticalBits(t *testing.T) {
	r := run(t, Config{Bits: 8, Style: place.Spiral, MaxParallel: 2, SkipNL: true})
	promoted := 0
	for _, p := range r.Par {
		if p == 2 {
			promoted++
		}
	}
	if promoted == 0 {
		t.Fatal("no bit was promoted to parallel wires")
	}
	// The final critical bit must itself be parallel (loop invariant).
	if r.Par[r.CriticalBit] != 2 {
		t.Errorf("critical bit %d not parallel-routed", r.CriticalBit)
	}
	// Parallel routing must beat the p=1 flow.
	base := run(t, Config{Bits: 8, Style: place.Spiral, SkipNL: true})
	if r.F3dBHz <= base.F3dBHz {
		t.Errorf("parallel f3dB %g not above baseline %g", r.F3dBHz, base.F3dBHz)
	}
}

func TestPaperF3dBOrdering(t *testing.T) {
	// The paper's table condition: S and BC run with parallel routing,
	// the [7] chessboard baseline without. Required shape:
	// f3dB(S) > f3dB(BC) > f3dB([7]).
	s := run(t, Config{Bits: 8, Style: place.Spiral, MaxParallel: 2, SkipNL: true})
	bc, _, err := RunBestBC(Config{Bits: 8, MaxParallel: 2, SkipNL: true})
	if err != nil {
		t.Fatal(err)
	}
	cb := run(t, Config{Bits: 8, Style: place.Chessboard, SkipNL: true})
	if !(s.F3dBHz > bc.F3dBHz && bc.F3dBHz > cb.F3dBHz) {
		t.Errorf("f3dB ordering violated: S=%.3g BC=%.3g CB=%.3g",
			s.F3dBHz, bc.F3dBHz, cb.F3dBHz)
	}
}

func TestPaperNLOrdering(t *testing.T) {
	// Table II shape at 8 bits: chessboard best INL/DNL, spiral worst.
	s := run(t, Config{Bits: 8, Style: place.Spiral, MaxParallel: 2})
	cb := run(t, Config{Bits: 8, Style: place.Chessboard})
	if cb.NL.MaxAbsINL >= s.NL.MaxAbsINL {
		t.Errorf("INL ordering violated: S=%g CB=%g", s.NL.MaxAbsINL, cb.NL.MaxAbsINL)
	}
	if s.NL.MaxAbsDNL > 0.5 {
		t.Errorf("spiral 8-bit DNL %g above 0.5 LSB", s.NL.MaxAbsDNL)
	}
}

func TestChessboardDoublesOddBitArea(t *testing.T) {
	// Table II: [7]'s 7-bit array equals its 8-bit array (doubling).
	odd := run(t, Config{Bits: 7, Style: place.Chessboard, SkipNL: true})
	even := run(t, Config{Bits: 8, Style: place.Chessboard, SkipNL: true})
	ratio := odd.Electrical.AreaUm2 / even.Electrical.AreaUm2
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("7-bit/8-bit chessboard area ratio %g, want ~1", ratio)
	}
	// Spiral 7-bit is about half the 8-bit area.
	sOdd := run(t, Config{Bits: 7, Style: place.Spiral, SkipNL: true})
	sEven := run(t, Config{Bits: 8, Style: place.Spiral, SkipNL: true})
	if r := sOdd.Electrical.AreaUm2 / sEven.Electrical.AreaUm2; r > 0.7 {
		t.Errorf("7-bit/8-bit spiral area ratio %g, want ~0.5", r)
	}
}

func TestRunBestBCSelection(t *testing.T) {
	best, all, err := RunBestBC(Config{Bits: 6, MaxParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no BC candidates")
	}
	for _, r := range all {
		if r.NL.MaxAbsDNL <= 0.5 && r.NL.MaxAbsINL <= 0.5 && r.F3dBHz > best.F3dBHz {
			t.Errorf("candidate %+v beats reported best (%g > %g)",
				r.Config.BC, r.F3dBHz, best.F3dBHz)
		}
	}
}

func TestRunAnnealedBaseline(t *testing.T) {
	r := run(t, Config{
		Bits: 6, Style: place.Annealed,
		Anneal: place.AnnealConfig{Seed: 1, Moves: 3000},
	})
	if r.F3dBHz <= 0 || r.NL.MaxAbsINL <= 0 {
		t.Fatal("annealed flow produced degenerate metrics")
	}
	if _, err := Run(Config{Bits: 7, Style: place.Annealed}); err == nil {
		t.Error("odd-bit annealed baseline must fail, as in the paper")
	}
}

func TestConstructiveRuntimes(t *testing.T) {
	// Table III: constructive place+route far below a second.
	for _, style := range []place.Style{place.Spiral, place.BlockChessboard} {
		r := run(t, Config{Bits: 8, Style: style, MaxParallel: 2, SkipNL: true})
		if pr := r.PlaceTime + r.RouteTime; pr > 2*time.Second {
			t.Errorf("%v place+route took %v; the method must stay constructive-fast", style, pr)
		}
	}
}

func TestParallelSweepMonotoneGain(t *testing.T) {
	f, err := ParallelSweep(Config{Bits: 6, Style: place.Spiral}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(f[1] > f[0] && f[2] > f[1]) {
		t.Errorf("f3dB not increasing with parallel wires: %v", f)
	}
	// Diminishing returns: gain 2->4 below gain 1->2 squared.
	if f[2]/f[1] > f[1]/f[0]*1.5 {
		t.Errorf("no diminishing returns: %v", f)
	}
}

func TestMismatchSpanSmall(t *testing.T) {
	r := run(t, Config{Bits: 6, Style: place.Spiral, SkipNL: true})
	span, err := MismatchSpan(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric placement cancels the gradient to first order.
	if span > 1e-6 {
		t.Errorf("systematic span %g too large for a CC placement", span)
	}
}

func TestRunRejectsUnknownStyle(t *testing.T) {
	if _, err := Run(Config{Bits: 6, Style: place.Style(99)}); err == nil {
		t.Error("unknown style must be rejected")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := run(t, Config{Bits: 6, Style: place.Spiral, MaxParallel: 2, SkipNL: true})
	b := run(t, Config{Bits: 6, Style: place.Spiral, MaxParallel: 2, SkipNL: true})
	if a.F3dBHz != b.F3dBHz || a.Electrical.ViaCuts != b.Electrical.ViaCuts {
		t.Error("flow must be deterministic")
	}
}

func TestPlaceDispatchDefaults(t *testing.T) {
	// BC with a zero-value parameter block picks a feasible default,
	// including at small bit counts where CoreBits must drop to 2.
	for _, bits := range []int{4, 6, 10} {
		m, err := Place(Config{Bits: bits, Style: place.BlockChessboard})
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
	// Annealed with a zero config gets the default anneal settings.
	m, err := Place(Config{Bits: 4, Style: place.Annealed})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelSweepPropagatesErrors(t *testing.T) {
	if _, err := ParallelSweep(Config{Bits: 99, Style: place.Spiral}, []int{1}); err == nil {
		t.Fatal("invalid bits must propagate")
	}
}

func TestRunBestBCInfeasibleBits(t *testing.T) {
	if _, _, err := RunBestBC(Config{Bits: 3, SkipNL: true}); err == nil {
		t.Fatal("3-bit BC sweep has no feasible structures and must error")
	}
}
