// Stage memoization: content-addressed caches of the pipeline's
// expensive intermediates, keyed by the exact inputs each stage
// consumes (docs/PERFORMANCE.md, "Cross-stage memoization").
//
//   - placement: (bits, style, effective style params) — technology-
//     independent (placements are cell grids).
//   - routed layout: placement key + per-bit parallel wires + the
//     geometric technology parameters routing reads (layer directions
//     and pitches, unit-cell outline, minimum spacing). Routing never
//     reads resistances or capacitances, so a layout is reusable
//     across electrical-knob sweeps; a hit under a different (but
//     geometry-equal) technology re-tags a shallow copy.
//   - extraction: layout key + the electrical parameters extraction
//     reads (wire/via/switch resistances, wire/coupling/top-plate
//     capacitances, unit C and abutment). Mismatch and reference-
//     voltage parameters are excluded — extraction never reads them —
//     so gradient- and correlation-knob sweeps reuse extractions too.
//
// Cached values are treated as immutable by the whole pipeline (they
// are shared between concurrent runs on a hit), and cold runs are
// deterministic, so cached and uncached runs produce bitwise-identical
// results. Stages still consult fault injection points on a hit, so
// fault-injection tests and drills see identical behavior either way.
package core

import (
	"ccdac/internal/ccmatrix"
	"ccdac/internal/extract"
	"ccdac/internal/memo"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// Process-global stage caches, registered for /metrics exposition.
// Bounds are deliberate: placements are tiny int grids, layouts and
// extractions are the bulky ones.
var (
	placeCache   = memo.Register(memo.New("core_place", 16<<20, 0))
	layoutCache  = memo.Register(memo.New("core_route", 128<<20, 0))
	extractCache = memo.Register(memo.New("core_extract", 64<<20, 0))
)

// placeCodec spills placement matrices — the flat-encodable stage
// value. Layouts and extractions hold deep pointer graphs (wire
// geometry, RC networks) and are cheap relative to the annealed
// placements and Cholesky factors, so they stay memory-only.
var placeCodec = memo.Codec{
	Encode: func(v any) ([]byte, bool) {
		m, ok := v.(*ccmatrix.Matrix)
		if !ok {
			return nil, false
		}
		data, err := m.MarshalBinary()
		return data, err == nil
	},
	Decode: func(data []byte) (any, int64, bool) {
		m := new(ccmatrix.Matrix)
		if m.UnmarshalBinary(data) != nil {
			return nil, 0, false
		}
		return m, matrixBytes(m), true
	},
}

// EnableMemoSpill attaches a durable spill tier (flag-gated by the
// CLIs; see internal/store.Spiller) to the spillable stage caches here
// and in internal/variation, so long sweeps survive memory pressure
// without recomputing placements or refactoring covariances.
func EnableMemoSpill(sp memo.Spill) {
	placeCache.SetSpill(sp, placeCodec)
	variation.EnableMemoSpill(sp)
}

// effectiveBC resolves the block-chessboard parameters Place actually
// uses, applying the zero-value default.
func effectiveBC(cfg Config) place.BCParams {
	p := cfg.BC
	if p.BlockCells == 0 {
		p = place.BCParams{CoreBits: 4, BlockCells: 2}
		if p.CoreBits > cfg.Bits-1 {
			p.CoreBits = 2
		}
	}
	return p
}

// effectiveAnneal resolves the annealing parameters Place actually
// uses, applying the zero-value default.
func effectiveAnneal(cfg Config) place.AnnealConfig {
	a := cfg.Anneal
	if a.Seed == 0 && a.Moves == 0 {
		a = place.DefaultAnnealConfig()
	}
	return a
}

// placeKey identifies a placement by everything Place consumes —
// effective parameters, not raw ones, so zero-value and explicit
// defaults share one entry.
func placeKey(cfg Config) string {
	k := memo.NewKey("core/place/v1").Int(cfg.Bits).Int(int(cfg.Style))
	switch cfg.Style {
	case place.BlockChessboard:
		p := effectiveBC(cfg)
		k.Int(p.CoreBits).Int(p.BlockCells)
	case place.Annealed:
		a := effectiveAnneal(cfg)
		k.I64(a.Seed).Int(a.Moves).
			F64(a.WDispersion).F64(a.WWirelength).F64(a.TStart).F64(a.TEnd)
	}
	return k.Sum()
}

// routeKey identifies a routed layout: the placement, the per-bit
// parallel-wire vector, and the geometric technology parameters the
// router reads. Electrical parameters are deliberately absent.
func routeKey(pk string, par []int, t *tech.Technology) string {
	k := memo.NewKey("core/route/v1").Str(pk).Ints(par)
	k.Int(len(t.Layers))
	for _, l := range t.Layers {
		k.Int(int(l.Dir)).F64(l.Pitch)
	}
	k.F64(t.SMinUm).
		F64(t.Unit.W).F64(t.Unit.H).F64(t.Unit.AbutLen).
		Int(t.Unit.BottomLayer).Int(t.Unit.TopLayer)
	return k.Sum()
}

// extractKey identifies an extraction: the layout plus the electrical
// parameters extraction reads. Mismatch statistics and VRef are
// excluded (extraction never reads them).
func extractKey(rk string, t *tech.Technology) string {
	k := memo.NewKey("core/extract/v1").Str(rk)
	k.Int(len(t.Layers))
	for _, l := range t.Layers {
		k.F64(l.ROhmPerUm).F64(l.CfFPerUm)
	}
	k.F64(t.ViaROhm).F64(t.SwitchROhm).F64(t.CouplingC0fFPerUm).
		F64(t.SMinUm).F64(t.TopPlateCfFPerUm).
		F64(t.Unit.CfF).F64(t.Unit.AbutLen)
	return k.Sum()
}

// layoutForTech re-tags a cached layout for the requesting run's
// technology: routing consumed only geometric parameters (the cache
// key guarantees they match), but the layout carries the full
// technology pointer for downstream extraction, which does read the
// electrical fields.
func layoutForTech(l *route.Layout, t *tech.Technology) *route.Layout {
	if l.Tech == t {
		return l
	}
	cp := *l
	cp.Tech = t
	return &cp
}

// matrixBytes estimates a placement's cache charge.
func matrixBytes(m *ccmatrix.Matrix) int64 {
	return int64(m.Rows*m.Cols)*8 + 96
}

// layoutBytes estimates a routed layout's cache charge from its bulk
// slices (wires and vias dominate).
func layoutBytes(l *route.Layout) int64 {
	n := int64(len(l.Wires))*64 + int64(len(l.Vias))*40 + int64(len(l.Clusters))*96
	for _, gs := range l.Groups {
		n += int64(len(gs)) * 64
	}
	n += int64(len(l.Par)+len(l.ChannelSlots))*8 + int64(len(l.Terminals))*16
	return n + matrixBytes(l.M) + 256
}

// summaryBytes estimates an extraction's cache charge: the per-bit RC
// nets dominate (node names, adjacency, capacitances).
func summaryBytes(s *extract.Summary) int64 {
	n := int64(256)
	for _, b := range s.Bits {
		if b.Net != nil {
			n += int64(b.Net.NumNodes()) * 128
		}
		n += int64(len(b.CellNodes)) * 8
	}
	for _, w := range s.Warnings {
		n += int64(len(w)) + 16
	}
	return n
}
