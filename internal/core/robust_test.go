package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ccdac/internal/fault"
	"ccdac/internal/linalg"
	"ccdac/internal/place"
)

// These tests use the process-global fault registry; they are
// deliberately not t.Parallel() and always defer fault.Reset().

func spiralCfg(bits, par int) Config {
	return Config{Bits: bits, Style: place.Spiral, MaxParallel: par, ThetaSteps: 2}
}

func TestFaultEveryStage(t *testing.T) {
	sentinel := errors.New("injected stage failure")
	for _, stage := range []string{
		fault.StagePlace, fault.StageRoute, fault.StageExtract, fault.StageAnalyze,
	} {
		t.Run(stage, func(t *testing.T) {
			defer fault.Reset()
			fault.Enable(stage, 0, sentinel)
			r, err := Run(spiralCfg(4, 0))
			if err == nil {
				t.Fatalf("stage %s: expected injected failure, got result %+v", stage, r)
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("stage %s: error is not a *StageError: %v", stage, err)
			}
			if se.Stage != stage {
				t.Errorf("stage attribution: got %q, want %q", se.Stage, stage)
			}
			if !errors.Is(err, sentinel) {
				t.Errorf("stage %s: cause not preserved through wrapping: %v", stage, err)
			}
			if !fault.Fired(stage) {
				t.Errorf("stage %s: fault did not fire", stage)
			}
		})
	}
}

func TestPanicIsContained(t *testing.T) {
	for _, stage := range []string{fault.StagePlace, fault.StageRoute, fault.StageExtract} {
		t.Run(stage, func(t *testing.T) {
			defer fault.Reset()
			fault.EnablePanic(stage, 0, "synthetic invariant violation")
			r, err := Run(spiralCfg(4, 0))
			if err == nil {
				t.Fatalf("stage %s: expected contained panic, got result %+v", stage, r)
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("stage %s: error is not a *StageError: %v", stage, err)
			}
			if se.Stage != stage {
				t.Errorf("panic attribution: got %q, want %q", se.Stage, stage)
			}
			if !strings.Contains(err.Error(), "recovered panic") {
				t.Errorf("stage %s: error does not mention the recovered panic: %v", stage, err)
			}
		})
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, spiralCfg(4, 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled through the stage error, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("canceled run must still return a *StageError, got %v", err)
	}
}

func TestCGFallbackToDenseCholesky(t *testing.T) {
	defer fault.Reset()
	// Parallel wires turn the critical bit's net into a mesh, forcing
	// the first-moment CG solve; injecting non-convergence must fall
	// back to the dense direct solve, not fail the flow.
	fault.Enable(fault.StageLinalgCG, 0, linalg.ErrNotConverged)
	r, err := Run(spiralCfg(6, 2))
	if err != nil {
		t.Fatalf("CG non-convergence must degrade, not fail: %v", err)
	}
	if !fault.Fired(fault.StageLinalgCG) {
		t.Skip("flow never reached a CG solve (all nets were trees)")
	}
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "fell back to dense Cholesky") {
			found = true
		}
	}
	if !found {
		t.Errorf("fallback not recorded in Warnings: %q", r.Warnings)
	}
}

func TestPromotionRetriesWithFewerWires(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	// Ordinal 1 = the second route call, i.e. the first promotion (4
	// wires on the critical bit). The flow must retry with 3.
	fault.Enable(fault.StageRoute, 1, sentinel)
	r, err := Run(spiralCfg(6, 4))
	if err != nil {
		t.Fatalf("failed promotion must degrade, not fail: %v", err)
	}
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "retrying with 3 wires") {
			found = true
		}
	}
	if !found {
		t.Fatalf("retry not recorded in Warnings: %q", r.Warnings)
	}
	if r.Par[r.CriticalBit] != 3 {
		t.Errorf("critical bit C_%d has %d wires, want the degraded 3", r.CriticalBit, r.Par[r.CriticalBit])
	}
}

func TestPromotionKeepsLastGoodLayout(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	// With MaxParallel=2 the promotion cannot retry lower; the flow must
	// keep the single-wire layout from the first pass.
	fault.Enable(fault.StageRoute, 1, sentinel)
	r, err := Run(spiralCfg(6, 2))
	if err != nil {
		t.Fatalf("failed minimal promotion must degrade, not fail: %v", err)
	}
	found := false
	for _, w := range r.Warnings {
		if strings.Contains(w, "keeping last-good layout") {
			found = true
		}
	}
	if !found {
		t.Fatalf("last-good fallback not recorded in Warnings: %q", r.Warnings)
	}
	for i, p := range r.Par {
		if p != 1 {
			t.Errorf("Par[%d] = %d, want the last-good single wire", i, p)
		}
	}
	if r.Layout == nil || r.Electrical == nil {
		t.Error("last-good layout and extraction missing from result")
	}
}

func TestBaseRouteFailureAborts(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	// Ordinal 0 fails the very first route: there is no last-good
	// layout, so the flow must abort with the routing stage error.
	fault.Enable(fault.StageRoute, 0, sentinel)
	_, err := Run(spiralCfg(6, 2))
	if !errors.Is(err, sentinel) {
		t.Fatalf("base routing failure must abort with the cause, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != fault.StageRoute {
		t.Fatalf("want routing StageError, got %v", err)
	}
}

func TestBestBCSkipsFailingCandidate(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	// Fail only the first candidate's base route; the sweep must return
	// the best of the remaining candidates and record the skip.
	fault.Enable(fault.StageRoute, 0, sentinel)
	cfg := Config{Bits: 6, ThetaSteps: 2}
	best, all, err := RunBestBC(cfg)
	if err != nil {
		t.Fatalf("one failing candidate must not fail the sweep: %v", err)
	}
	nParams := len(place.DefaultBCParams(6))
	if len(all) != nParams-1 {
		t.Errorf("got %d surviving candidates, want %d", len(all), nParams-1)
	}
	found := false
	for _, w := range best.Warnings {
		if strings.Contains(w, "skipped") {
			found = true
		}
	}
	if !found {
		t.Errorf("skipped candidate not recorded in best.Warnings: %q", best.Warnings)
	}
}

func TestBestBCNoFeasibleCandidates(t *testing.T) {
	// 2 bits admits no block-chessboard structure (CoreBits must be even
	// and in 2..bits-1): the sweep must error with a placement
	// StageError instead of returning an empty best.
	_, _, err := RunBestBC(Config{Bits: 2, ThetaSteps: 2})
	if err == nil {
		t.Fatal("sweep with no feasible candidates must error")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != fault.StagePlace {
		t.Fatalf("want placement StageError, got %v", err)
	}
}
