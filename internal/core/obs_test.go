package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"ccdac/internal/fault"
	"ccdac/internal/linalg"
	"ccdac/internal/obs"
)

// traced runs f under a fresh live trace and returns the finished
// trace's spans and metrics.
func traced(t *testing.T, f func(ctx context.Context)) ([]obs.SpanRecord, obs.MetricsSnapshot) {
	t.Helper()
	tr := obs.New(obs.Options{})
	f(obs.WithTrace(context.Background(), tr))
	tr.Finish()
	return tr.Spans(), tr.Registry().Snapshot()
}

func TestTraceCoversEveryStage(t *testing.T) {
	spans, snap := traced(t, func(ctx context.Context) {
		if _, err := RunContext(ctx, spiralCfg(6, 2)); err != nil {
			t.Fatal(err)
		}
	})
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.Name] = true
	}
	for _, stage := range []string{
		fault.StagePlace, fault.StageRoute, fault.StageExtract, fault.StageAnalyze,
		"route.wires", "extract.bitnets", "analysis.sweep",
	} {
		if !seen[stage] {
			t.Errorf("no span recorded for %q (got %v)", stage, seen)
		}
	}
	if got := snap.Counter("ccdac_core_runs_total", nil); got != 1 {
		t.Errorf("ccdac_core_runs_total = %d, want 1", got)
	}
	for _, stage := range []string{fault.StagePlace, fault.StageAnalyze} {
		h := snap.Histograms[`ccdac_core_stage_seconds{stage="`+stage+`"}`]
		if h.Count == 0 {
			t.Errorf("no ccdac_core_stage_seconds samples for stage %q", stage)
		}
	}
}

func TestFaultMarksFailingSpanErrored(t *testing.T) {
	defer fault.Reset()
	obs.ResetFaultEvents()
	defer obs.ResetFaultEvents()
	sentinel := errors.New("injected extraction failure")
	fault.Enable(fault.StageExtract, 0, sentinel)

	spans, _ := traced(t, func(ctx context.Context) {
		if _, err := RunContext(ctx, spiralCfg(4, 0)); !errors.Is(err, sentinel) {
			t.Fatalf("want injected failure, got %v", err)
		}
	})
	var found bool
	for _, s := range spans {
		if s.Name == fault.StageExtract {
			found = true
			if s.Err == "" {
				t.Error("extraction span not marked errored")
			} else if !strings.Contains(s.Err, "injected extraction failure") {
				t.Errorf("extraction span error = %q, want the injected cause", s.Err)
			}
		}
	}
	if !found {
		t.Fatal("no extraction span recorded for the failing run")
	}
	evs := obs.FaultEvents()
	if len(evs) == 0 || evs[len(evs)-1].Stage != fault.StageExtract {
		t.Errorf("fault firing not reported to obs: events = %+v", evs)
	}
}

func TestCGFallbackCountedStructurally(t *testing.T) {
	defer fault.Reset()
	fault.Enable(fault.StageLinalgCG, 0, linalg.ErrNotConverged)
	var r *Result
	_, snap := traced(t, func(ctx context.Context) {
		var err error
		r, err = RunContext(ctx, spiralCfg(6, 2))
		if err != nil {
			t.Fatalf("CG non-convergence must degrade, not fail: %v", err)
		}
	})
	if !fault.Fired(fault.StageLinalgCG) {
		t.Skip("flow never reached a CG solve (all nets were trees)")
	}
	if r.Stats.CGFallbacks == 0 {
		t.Error("Stats.CGFallbacks = 0 after a forced fallback")
	}
	if got := snap.Counter("ccdac_rcnet_cg_fallback_total", nil); got == 0 {
		t.Error("ccdac_rcnet_cg_fallback_total = 0 after a forced fallback")
	}
}

func TestParWireRetryCountedStructurally(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	fault.Enable(fault.StageRoute, 1, sentinel)
	var r *Result
	_, snap := traced(t, func(ctx context.Context) {
		var err error
		r, err = RunContext(ctx, spiralCfg(6, 4))
		if err != nil {
			t.Fatalf("failed promotion must degrade, not fail: %v", err)
		}
	})
	if r.Stats.ParWireRetries == 0 {
		t.Error("Stats.ParWireRetries = 0 after a forced promotion retry")
	}
	if got := snap.Counter("ccdac_core_parwire_retry_total", nil); got == 0 {
		t.Error("ccdac_core_parwire_retry_total = 0 after a forced promotion retry")
	}
}

func TestParWireAbandonCountedStructurally(t *testing.T) {
	defer fault.Reset()
	sentinel := errors.New("injected routing failure")
	fault.Enable(fault.StageRoute, 1, sentinel)
	var r *Result
	_, snap := traced(t, func(ctx context.Context) {
		var err error
		r, err = RunContext(ctx, spiralCfg(6, 2))
		if err != nil {
			t.Fatalf("failed minimal promotion must degrade, not fail: %v", err)
		}
	})
	if r.Stats.ParWireAbandoned == 0 {
		t.Error("Stats.ParWireAbandoned = 0 after an abandoned promotion")
	}
	if got := snap.Counter("ccdac_core_parwire_abandoned_total", nil); got == 0 {
		t.Error("ccdac_core_parwire_abandoned_total = 0 after an abandoned promotion")
	}
}

func TestStageErrorCarriesWarnings(t *testing.T) {
	defer fault.Reset()
	// Fail the analysis stage after routing degradations have already
	// accumulated: the StageError must carry them out of the run.
	routeFail := errors.New("injected routing failure")
	analyzeFail := errors.New("injected analysis failure")
	fault.Enable(fault.StageRoute, 1, routeFail)
	fault.Enable(fault.StageAnalyze, 0, analyzeFail)
	_, err := Run(spiralCfg(6, 2))
	if !errors.Is(err, analyzeFail) {
		t.Fatalf("want the injected analysis failure, got %v", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *StageError: %v", err)
	}
	if len(se.Warnings) == 0 {
		t.Fatal("StageError.Warnings empty; accumulated degradations were lost")
	}
	found := false
	for _, w := range se.Warnings {
		if strings.Contains(w, "keeping last-good layout") {
			found = true
		}
	}
	if !found {
		t.Errorf("StageError.Warnings = %q, want the promotion degradation", se.Warnings)
	}
}
