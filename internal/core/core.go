// Package core orchestrates the paper's full constructive flow
// (Sec. IV): placement → connected-group formation → Algorithm-1
// routing → parasitic extraction → Elmore/f3dB analysis → 3σ INL/DNL
// analysis, including the iterative critical-bit parallel-wire
// assignment of Sec. IV-B4 and the "best block chessboard" selection
// used by the paper's tables.
package core

import (
	"fmt"
	"math"
	"time"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/dacmodel"
	"ccdac/internal/extract"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// Config selects and parameterizes one flow run.
type Config struct {
	// Bits is the DAC resolution N (capacitors C_0..C_N).
	Bits int
	// Style selects the placement algorithm.
	Style place.Style
	// BC parameterizes block-chessboard placements (Style ==
	// place.BlockChessboard); zero value lets RunBestBC sweep.
	BC place.BCParams
	// Anneal parameterizes the [1]-baseline (Style == place.Annealed).
	Anneal place.AnnealConfig
	// Tech is the process technology; nil selects tech.FinFET12.
	Tech *tech.Technology
	// MaxParallel enables parallel-wire routing: critical bits are
	// promoted to MaxParallel wires iteratively until the critical bit
	// is already parallel (Sec. IV-B4). Values <= 1 disable it. The
	// paper applies it to the spiral and BC flows but not to the [1]
	// and [7] baselines.
	MaxParallel int
	// ThetaSteps is the number of gradient angles swept for the
	// worst-case INL/DNL (0 selects 8).
	ThetaSteps int
	// SkipNL skips the INL/DNL analysis (electrical metrics only).
	SkipNL bool
}

// Result is a fully analyzed layout.
type Result struct {
	Config     Config
	Placement  *ccmatrix.Matrix
	Layout     *route.Layout
	Electrical *extract.Summary
	// NL is the worst-over-theta 3σ INL/DNL (nil if SkipNL).
	NL *dacmodel.Result
	// F3dBHz is Eq. 16 evaluated at the critical bit's Elmore delay.
	F3dBHz float64
	// CriticalBit is the capacitor limiting the switching speed.
	CriticalBit int
	// Par is the final per-bit parallel wire assignment.
	Par []int
	// PlaceTime and RouteTime are the constructive-runtime components
	// reported in Table III; AnalyzeTime covers extraction + NL.
	PlaceTime, RouteTime, AnalyzeTime time.Duration
}

// Place builds just the placement for a configuration.
func Place(cfg Config) (*ccmatrix.Matrix, error) {
	switch cfg.Style {
	case place.Spiral:
		return place.NewSpiral(cfg.Bits)
	case place.Chessboard:
		return place.NewChessboard(cfg.Bits)
	case place.BlockChessboard:
		p := cfg.BC
		if p.BlockCells == 0 {
			p = place.BCParams{CoreBits: 4, BlockCells: 2}
			if p.CoreBits > cfg.Bits-1 {
				p.CoreBits = 2
			}
		}
		return place.NewBlockChessboard(cfg.Bits, p)
	case place.Annealed:
		a := cfg.Anneal
		if a.Seed == 0 && a.Moves == 0 {
			a = place.DefaultAnnealConfig()
		}
		return place.NewAnnealed(cfg.Bits, a)
	}
	return nil, fmt.Errorf("core: unknown placement style %v", cfg.Style)
}

// Run executes the full flow for one configuration.
func Run(cfg Config) (*Result, error) {
	t := cfg.Tech
	if t == nil {
		t = tech.FinFET12()
	}
	res := &Result{Config: cfg}

	start := time.Now()
	m, err := Place(cfg)
	if err != nil {
		return nil, err
	}
	res.PlaceTime = time.Since(start)
	res.Placement = m

	// Route; then iteratively promote the critical bit to parallel
	// wires and re-route until the critical bit is already parallel
	// (the paper: "when parallel routing is used on the MSB, the
	// second-most MSB ... may become critical, and parallel routing is
	// used there too").
	start = time.Now()
	par := make([]int, m.Bits+1)
	for i := range par {
		par[i] = 1
	}
	var l *route.Layout
	var sum *extract.Summary
	for iter := 0; ; iter++ {
		l, err = route.Route(m, t, par)
		if err != nil {
			return nil, err
		}
		sum, err = extract.Extract(l)
		if err != nil {
			return nil, err
		}
		crit := sum.CriticalBit()
		if cfg.MaxParallel <= 1 || par[crit] >= cfg.MaxParallel || iter > m.Bits+1 {
			break
		}
		par[crit] = cfg.MaxParallel
	}
	res.RouteTime = time.Since(start)
	res.Layout = l
	res.Par = par

	start = time.Now()
	res.Electrical = sum
	res.CriticalBit = sum.CriticalBit()
	res.F3dBHz = extract.F3dB(m.Bits, sum.Tau())

	if !cfg.SkipNL {
		steps := cfg.ThetaSteps
		if steps <= 0 {
			steps = 8
		}
		sweep, err := variation.SweepTheta(m, l.CellCenter, t, steps)
		if err != nil {
			return nil, err
		}
		nl, err := dacmodel.WorstOverTheta(sweep, dacmodel.Parasitics{CTSfF: sum.CTSfF}, t.VRef)
		if err != nil {
			return nil, err
		}
		res.NL = nl
	}
	res.AnalyzeTime = time.Since(start)
	return res, nil
}

// RunBestBC sweeps the block-chessboard parameter grid and returns the
// best result — the paper reports "the best BC result" among several
// granularities (Fig. 4). Best = the highest f3dB among candidates
// whose INL and DNL stay below 0.5 LSB (all of the paper's do); ties
// break toward lower INL.
func RunBestBC(cfg Config) (*Result, []*Result, error) {
	cfg.Style = place.BlockChessboard
	params := place.DefaultBCParams(cfg.Bits)
	if len(params) == 0 {
		return nil, nil, fmt.Errorf("core: no feasible BC structures for %d bits", cfg.Bits)
	}
	var best *Result
	all := make([]*Result, 0, len(params))
	for _, p := range params {
		c := cfg
		c.BC = p
		r, err := Run(c)
		if err != nil {
			return nil, nil, fmt.Errorf("core: BC %+v: %w", p, err)
		}
		all = append(all, r)
		if r.NL != nil && (r.NL.MaxAbsDNL > 0.5 || r.NL.MaxAbsINL > 0.5) {
			continue
		}
		if best == nil || better(r, best) {
			best = r
		}
	}
	if best == nil {
		// No candidate met the 0.5 LSB bound; fall back to the fastest.
		best = all[0]
		for _, r := range all[1:] {
			if r.F3dBHz > best.F3dBHz {
				best = r
			}
		}
	}
	return best, all, nil
}

func better(a, b *Result) bool {
	if a.F3dBHz != b.F3dBHz {
		return a.F3dBHz > b.F3dBHz
	}
	if a.NL != nil && b.NL != nil {
		return a.NL.MaxAbsINL < b.NL.MaxAbsINL
	}
	return false
}

// ParallelSweep routes one placement at every parallel-wire count in
// ks (applied iteratively to critical bits) and returns the resulting
// f3dB values — the data behind Fig. 6.
func ParallelSweep(cfg Config, ks []int) ([]float64, error) {
	out := make([]float64, len(ks))
	for i, k := range ks {
		c := cfg
		c.MaxParallel = k
		c.SkipNL = true
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = r.F3dBHz
	}
	return out, nil
}

// MismatchSpan returns the relative systematic spread of a result's
// placement at the worst gradient angle, a diagnostic for common-
// centroid quality: max_k |DeltaC_k^sys| / C_k over capacitors k >= 2.
func MismatchSpan(res *Result, steps int) (float64, error) {
	if steps <= 0 {
		steps = 8
	}
	t := res.Config.Tech
	if t == nil {
		t = tech.FinFET12()
	}
	sweep, err := variation.SweepTheta(res.Placement, res.Layout.CellCenter, t, steps)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, a := range sweep {
		for k := 2; k <= a.Bits; k++ {
			rel := math.Abs(a.DCSys(k)) / (float64(a.Counts[k]) * a.CuFF)
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst, nil
}
