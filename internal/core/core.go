// Package core orchestrates the paper's full constructive flow
// (Sec. IV): placement → connected-group formation → Algorithm-1
// routing → parasitic extraction → Elmore/f3dB analysis → 3σ INL/DNL
// analysis, including the iterative critical-bit parallel-wire
// assignment of Sec. IV-B4 and the "best block chessboard" selection
// used by the paper's tables.
//
// Robustness contract: every stage runs under panic containment, so an
// internal invariant slip (an out-of-range matrix index, a negative
// parasitic) surfaces as a *StageError instead of crashing the caller.
// Recoverable failures degrade instead of aborting — see the Warnings
// field of Result and docs/ROBUSTNESS.md.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"time"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/dacmodel"
	"ccdac/internal/extract"
	"ccdac/internal/fault"
	"ccdac/internal/memo"
	"ccdac/internal/obs"
	"ccdac/internal/par"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// Config selects and parameterizes one flow run.
type Config struct {
	// Bits is the DAC resolution N (capacitors C_0..C_N).
	Bits int
	// Style selects the placement algorithm.
	Style place.Style
	// BC parameterizes block-chessboard placements (Style ==
	// place.BlockChessboard); zero value lets RunBestBC sweep.
	BC place.BCParams
	// Anneal parameterizes the [1]-baseline (Style == place.Annealed).
	Anneal place.AnnealConfig
	// Tech is the process technology; nil selects tech.FinFET12.
	Tech *tech.Technology
	// MaxParallel enables parallel-wire routing: critical bits are
	// promoted to MaxParallel wires iteratively until the critical bit
	// is already parallel (Sec. IV-B4). Values <= 1 disable it. The
	// paper applies it to the spiral and BC flows but not to the [1]
	// and [7] baselines.
	MaxParallel int
	// ThetaSteps is the number of gradient angles swept for the
	// worst-case INL/DNL (0 selects 8).
	ThetaSteps int
	// SkipNL skips the INL/DNL analysis (electrical metrics only).
	SkipNL bool
	// Workers is the parallelism budget for the analysis hot loops
	// (covariance rows, theta steps, per-bit extraction, Monte-Carlo
	// samples): 0 uses GOMAXPROCS, negative forces serial execution.
	// Results are identical at any worker count; only wall time
	// changes.
	Workers int
	// Memo enables content-addressed memoization of stage
	// intermediates (placement, routed layout, extraction, covariance)
	// in process-global caches, so repeated or overlapping
	// configurations reuse work across runs. Results are bitwise
	// identical with or without it; the knob trades memory for wall
	// time. Callers may equivalently enable it for a whole call tree
	// via memo.WithEnabled on the context.
	Memo bool
	// FFT selects the covariance kernel family for the analysis
	// stages: "" or "auto" engages the structured FFT path whenever
	// the layout geometry allows (the default), "off" forces the
	// dense path everywhere — the A/B escape hatch. The two paths
	// agree to documented tolerance (docs/PERFORMANCE.md), not
	// bitwise.
	FFT string
}

// StageError attributes a flow failure to the pipeline stage that
// produced it. Stage is one of the fault-package stage names
// (fault.StagePlace, fault.StageRoute, ...). It wraps the underlying
// cause, so errors.Is/As reach through it; recovered panics carry the
// panic value and stack in Err.
type StageError struct {
	Stage string
	Err   error
	// Warnings carries the graceful degradations the run had already
	// accumulated before failing, so callers can still report them when
	// no Result is returned.
	Warnings []string
}

func (e *StageError) Error() string { return fmt.Sprintf("core: %s stage: %v", e.Stage, e.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// runStage executes one pipeline stage with cancellation checking and
// panic containment, attributing any failure to the stage name. The
// stage runs under an observability span named after it (passed down
// through the callback's context for sub-spans); a failing stage marks
// its span errored, and every completion feeds the per-stage duration
// histogram.
func runStage(ctx context.Context, stage string, f func(context.Context) error) (err error) {
	sctx, span := obs.StartSpan(ctx, stage)
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Err: fmt.Errorf("recovered panic: %v\n%s", r, debug.Stack())}
		}
		span.Fail(err)
		span.End()
		obs.ObserveDurationL(ctx, "ccdac_core_stage_seconds", obs.Labels{"stage": stage}, time.Since(start))
	}()
	if cerr := ctx.Err(); cerr != nil {
		return &StageError{Stage: stage, Err: cerr}
	}
	if serr := f(sctx); serr != nil {
		var se *StageError
		if errors.As(serr, &se) {
			return serr
		}
		return &StageError{Stage: stage, Err: serr}
	}
	return nil
}

// canceled reports whether err stems from context cancellation or
// timeout — such failures must abort, never degrade.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Result is a fully analyzed layout.
type Result struct {
	Config     Config
	Placement  *ccmatrix.Matrix
	Layout     *route.Layout
	Electrical *extract.Summary
	// NL is the worst-over-theta 3σ INL/DNL (nil if SkipNL).
	NL *dacmodel.Result
	// F3dBHz is Eq. 16 evaluated at the critical bit's Elmore delay.
	F3dBHz float64
	// CriticalBit is the capacitor limiting the switching speed.
	CriticalBit int
	// Par is the final per-bit parallel wire assignment.
	Par []int
	// Warnings records graceful degradations taken during the run:
	// CG→dense solver fallbacks, abandoned parallel-wire promotions,
	// and skipped best-BC candidates. An empty slice means the full
	// flow ran as configured.
	Warnings []string
	// Stats are the structured counters behind those warnings.
	Stats RunStats
	// PlaceTime and RouteTime are the constructive-runtime components
	// reported in Table III; AnalyzeTime covers extraction + NL.
	PlaceTime, RouteTime, AnalyzeTime time.Duration
}

// RunStats reports one run's degradation and solver-effort counters in
// structured form — the numeric counterpart of the Warnings prose, so
// tests assert on counts instead of matching warning text. The same
// numbers are recorded as trace metrics when a trace is live.
type RunStats struct {
	// CGIterations and CGFallbacks total the sparse-solver effort and
	// CG→Cholesky fallbacks of the kept layout's extraction.
	CGIterations, CGFallbacks int
	// ParWireRetries counts parallel-wire promotions retried with fewer
	// wires after a routing or extraction failure.
	ParWireRetries int
	// ParWireAbandoned counts promotions abandoned entirely, reverting
	// to the last-good layout.
	ParWireAbandoned int
}

// Place builds just the placement for a configuration.
func Place(cfg Config) (*ccmatrix.Matrix, error) {
	switch cfg.Style {
	case place.Spiral:
		return place.NewSpiral(cfg.Bits)
	case place.Chessboard:
		return place.NewChessboard(cfg.Bits)
	case place.BlockChessboard:
		return place.NewBlockChessboard(cfg.Bits, effectiveBC(cfg))
	case place.Annealed:
		return place.NewAnnealed(cfg.Bits, effectiveAnneal(cfg))
	}
	return nil, fmt.Errorf("core: unknown placement style %v", cfg.Style)
}

// Run executes the full flow for one configuration.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the full flow under a context. Cancellation is
// checked at every stage boundary and between parallel-wire promotion
// iterations; a canceled run returns a *StageError wrapping ctx.Err().
// No panic raised by an internal package escapes this function.
func RunContext(ctx context.Context, cfg Config) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Carry the run's worker budget to every downstream hot loop.
	ctx = par.WithWorkers(ctx, cfg.Workers)
	if cfg.FFT == "off" {
		ctx = variation.WithFFTMode(ctx, variation.FFTOff)
	}
	// Arm stage memoization for this call tree when asked; downstream
	// analysis (covariance, Cholesky) keys off the same mark.
	if cfg.Memo {
		ctx = memo.WithEnabled(ctx)
	}
	useMemo := memo.Enabled(ctx)
	// Backstop for panics in the orchestration glue itself; per-stage
	// panics are attributed by runStage before reaching this.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &StageError{Stage: "internal", Err: fmt.Errorf("recovered panic: %v\n%s", r, debug.Stack())}
		}
	}()
	t := cfg.Tech
	if t == nil {
		t = tech.FinFET12()
	}
	res = &Result{Config: cfg}
	obs.Count(ctx, "ccdac_core_runs_total", 1)

	start := time.Now()
	var m *ccmatrix.Matrix
	pKey := ""
	if useMemo {
		pKey = placeKey(cfg)
	}
	if err := runStage(ctx, fault.StagePlace, func(sctx context.Context) error {
		if useMemo {
			if v, ok := placeCache.Get(pKey); ok {
				// Fault injection stays observable on a hit.
				if ferr := fault.Check(fault.StagePlace); ferr != nil {
					return ferr
				}
				obs.CurrentSpan(sctx).SetAttr("memo", "hit")
				m = v.(*ccmatrix.Matrix)
				return nil
			}
		}
		var perr error
		m, perr = Place(cfg)
		if perr == nil && useMemo {
			placeCache.Put(pKey, m, matrixBytes(m))
		}
		return perr
	}); err != nil {
		return nil, err
	}
	res.PlaceTime = time.Since(start)
	res.Placement = m

	// Route; then iteratively promote the critical bit to parallel
	// wires and re-route until the critical bit is already parallel
	// (the paper: "when parallel routing is used on the MSB, the
	// second-most MSB ... may become critical, and parallel routing is
	// used there too"). A promotion that makes routing or extraction
	// fail degrades instead of aborting: retry with fewer wires, and if
	// even two wires fail, keep the last-good single-wire layout.
	start = time.Now()
	par := make([]int, m.Bits+1)
	capOf := make([]int, m.Bits+1)
	for i := range par {
		par[i] = 1
		capOf[i] = cfg.MaxParallel
		if capOf[i] < 1 {
			capOf[i] = 1
		}
	}
	var l, lastL *route.Layout
	var sum, lastSum *extract.Summary
	var lastPar []int
	promoted := -1
	for iter := 0; ; iter++ {
		var stepL *route.Layout
		var stepSum *extract.Summary
		iterAttr := strconv.Itoa(iter)
		rKey := ""
		if useMemo {
			rKey = routeKey(pKey, par, t)
		}
		err := runStage(ctx, fault.StageRoute, func(sctx context.Context) error {
			obs.CurrentSpan(sctx).SetAttr("iter", iterAttr)
			if useMemo {
				if v, ok := layoutCache.Get(rKey); ok {
					if ferr := fault.Check(fault.StageRoute); ferr != nil {
						return ferr
					}
					obs.CurrentSpan(sctx).SetAttr("memo", "hit")
					stepL = layoutForTech(v.(*route.Layout), t)
					return nil
				}
			}
			var rerr error
			stepL, rerr = route.RouteContext(sctx, m, t, par)
			if rerr == nil && useMemo {
				layoutCache.Put(rKey, stepL, layoutBytes(stepL))
			}
			return rerr
		})
		if err == nil {
			err = runStage(ctx, fault.StageExtract, func(sctx context.Context) error {
				obs.CurrentSpan(sctx).SetAttr("iter", iterAttr)
				if useMemo {
					if v, ok := extractCache.Get(extractKey(rKey, t)); ok {
						if ferr := fault.Check(fault.StageExtract); ferr != nil {
							return ferr
						}
						obs.CurrentSpan(sctx).SetAttr("memo", "hit")
						stepSum = v.(*extract.Summary)
						return nil
					}
				}
				var xerr error
				stepSum, xerr = extract.ExtractContext(sctx, stepL)
				if xerr == nil && useMemo {
					extractCache.Put(extractKey(rKey, t), stepSum, summaryBytes(stepSum))
				}
				return xerr
			})
		}
		if err != nil {
			if canceled(err) || lastL == nil {
				// Cancellation, or the base single-wire flow itself
				// failed: nothing to degrade to.
				return nil, failWith(err, res)
			}
			if par[promoted] > 2 {
				// Retry the failed promotion with fewer parallel wires.
				par[promoted]--
				capOf[promoted] = par[promoted]
				res.Stats.ParWireRetries++
				obs.Count(ctx, "ccdac_core_parwire_retry_total", 1)
				res.Warnings = append(res.Warnings, fmt.Sprintf(
					"core: %d-wire promotion of C_%d failed (%v); retrying with %d wires",
					par[promoted]+1, promoted, err, par[promoted]))
				continue
			}
			// Even the minimal promotion fails: keep the last-good layout.
			capOf[promoted] = 1
			l, sum = lastL, lastSum
			par = lastPar
			res.Stats.ParWireAbandoned++
			obs.Count(ctx, "ccdac_core_parwire_abandoned_total", 1)
			res.Warnings = append(res.Warnings, fmt.Sprintf(
				"core: parallel promotion of C_%d failed (%v); keeping last-good layout", promoted, err))
			break
		}
		l, sum = stepL, stepSum
		lastL, lastSum = stepL, stepSum
		lastPar = append([]int(nil), par...)
		crit := sum.CriticalBit()
		if par[crit] >= capOf[crit] || iter > m.Bits+1 {
			break
		}
		promoted = crit
		par[crit] = capOf[crit]
	}
	res.RouteTime = time.Since(start)
	res.Layout = l
	res.Par = par
	res.Warnings = append(res.Warnings, sum.Warnings...)
	res.Stats.CGIterations = sum.CGIterations
	res.Stats.CGFallbacks = sum.CGFallbacks

	start = time.Now()
	res.Electrical = sum
	res.CriticalBit = sum.CriticalBit()
	res.F3dBHz = extract.F3dB(m.Bits, sum.Tau())

	if !cfg.SkipNL {
		if err := runStage(ctx, fault.StageAnalyze, func(sctx context.Context) error {
			if ferr := fault.Check(fault.StageAnalyze); ferr != nil {
				return ferr
			}
			steps := cfg.ThetaSteps
			if steps <= 0 {
				steps = 8
			}
			_, span := obs.StartSpan(sctx, "analysis.sweep")
			sweep, serr := variation.SweepThetaContext(sctx, m, l.CellCenter, t, steps)
			span.Fail(serr)
			span.End()
			if serr != nil {
				return serr
			}
			_, span = obs.StartSpan(sctx, "analysis.nl")
			nl, nerr := dacmodel.WorstOverThetaContext(sctx, sweep, dacmodel.Parasitics{CTSfF: sum.CTSfF}, t.VRef)
			span.Fail(nerr)
			span.End()
			if nerr != nil {
				return nerr
			}
			res.NL = nl
			if len(sweep) > 0 {
				// Covariance-path degradations (FFT → dense fallback)
				// surface like every other graceful degradation. The
				// sweep shares one covariance build, so step 0 carries
				// the run's warnings.
				res.Warnings = append(res.Warnings, sweep[0].Warnings...)
			}
			return nil
		}); err != nil {
			return nil, failWith(err, res)
		}
	}
	res.AnalyzeTime = time.Since(start)
	return res, nil
}

// failWith attaches the run's accumulated degradation warnings to the
// failing StageError, so they survive the discarded Result and callers
// can still report them alongside the error.
func failWith(err error, res *Result) error {
	var se *StageError
	if res != nil && len(res.Warnings) > 0 && errors.As(err, &se) {
		se.Warnings = append(append([]string(nil), res.Warnings...), se.Warnings...)
	}
	return err
}

// RunBestBC sweeps the block-chessboard parameter grid and returns the
// best result — the paper reports "the best BC result" among several
// granularities (Fig. 4). Best = the highest f3dB among candidates
// whose INL and DNL stay below 0.5 LSB (all of the paper's do); ties
// break toward lower INL.
func RunBestBC(cfg Config) (*Result, []*Result, error) {
	return RunBestBCContext(context.Background(), cfg)
}

// RunBestBCContext is RunBestBC under a context. A candidate that
// fails is skipped and recorded in the best result's Warnings rather
// than aborting the sweep; the sweep errors only when every candidate
// fails (with the last failure) or the context is canceled.
func RunBestBCContext(ctx context.Context, cfg Config) (*Result, []*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.Style = place.BlockChessboard
	params := place.DefaultBCParams(cfg.Bits)
	if len(params) == 0 {
		return nil, nil, &StageError{
			Stage: fault.StagePlace,
			Err:   fmt.Errorf("core: no feasible BC structures for %d bits", cfg.Bits),
		}
	}
	var best *Result
	var skipped []string
	var lastErr error
	all := make([]*Result, 0, len(params))
	for _, p := range params {
		// With warm stage caches a candidate costs almost nothing, so
		// this loop can spin through the grid faster than the per-stage
		// checks inside RunContext fire; honor cancellation per
		// candidate to keep canceled sweeps prompt either way.
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, &StageError{Stage: fault.StagePlace, Err: cerr}
		}
		c := cfg
		c.BC = p
		cctx, span := obs.StartSpan(ctx, "bestbc.candidate")
		span.SetAttr("core_bits", strconv.Itoa(p.CoreBits))
		span.SetAttr("block_cells", strconv.Itoa(p.BlockCells))
		r, err := RunContext(cctx, c)
		span.Fail(err)
		span.End()
		if err != nil {
			if canceled(err) {
				return nil, nil, err
			}
			obs.Count(ctx, "ccdac_core_bc_skipped_total", 1)
			lastErr = fmt.Errorf("core: BC %+v: %w", p, err)
			skipped = append(skipped, fmt.Sprintf(
				"core: BC candidate {core %d, block %d} skipped: %v", p.CoreBits, p.BlockCells, err))
			continue
		}
		all = append(all, r)
		if r.NL != nil && (r.NL.MaxAbsDNL > 0.5 || r.NL.MaxAbsINL > 0.5) {
			continue
		}
		if best == nil || better(r, best) {
			best = r
		}
	}
	if len(all) == 0 {
		return nil, nil, lastErr
	}
	if best == nil {
		// No candidate met the 0.5 LSB bound; fall back to the fastest.
		best = all[0]
		for _, r := range all[1:] {
			if r.F3dBHz > best.F3dBHz {
				best = r
			}
		}
	}
	best.Warnings = append(best.Warnings, skipped...)
	return best, all, nil
}

func better(a, b *Result) bool {
	if a.F3dBHz != b.F3dBHz {
		return a.F3dBHz > b.F3dBHz
	}
	if a.NL != nil && b.NL != nil {
		return a.NL.MaxAbsINL < b.NL.MaxAbsINL
	}
	return false
}

// ParallelSweep routes one placement at every parallel-wire count in
// ks (applied iteratively to critical bits) and returns the resulting
// f3dB values — the data behind Fig. 6.
func ParallelSweep(cfg Config, ks []int) ([]float64, error) {
	out := make([]float64, len(ks))
	for i, k := range ks {
		c := cfg
		c.MaxParallel = k
		c.SkipNL = true
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out[i] = r.F3dBHz
	}
	return out, nil
}

// MismatchSpan returns the relative systematic spread of a result's
// placement at the worst gradient angle, a diagnostic for common-
// centroid quality: max_k |DeltaC_k^sys| / C_k over capacitors k >= 2.
func MismatchSpan(res *Result, steps int) (float64, error) {
	if steps <= 0 {
		steps = 8
	}
	t := res.Config.Tech
	if t == nil {
		t = tech.FinFET12()
	}
	sweep, err := variation.SweepTheta(res.Placement, res.Layout.CellCenter, t, steps)
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for _, a := range sweep {
		for k := 2; k <= a.Bits; k++ {
			rel := math.Abs(a.DCSys(k)) / (float64(a.Counts[k]) * a.CuFF)
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst, nil
}
