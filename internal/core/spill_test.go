package core

import (
	"reflect"
	"testing"

	"ccdac/internal/memo"
	"ccdac/internal/place"
	"ccdac/internal/store"
)

// TestPlaceCodecRoundTrip: the production spill codec reproduces real
// pipeline placements exactly — the correctness bar for reviving a
// placement from disk instead of re-annealing it.
func TestPlaceCodecRoundTrip(t *testing.T) {
	spiral, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := place.NewAnnealed(6, place.DefaultAnnealConfig())
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]any{"spiral": spiral, "annealed": annealed} {
		data, ok := placeCodec.Encode(m)
		if !ok {
			t.Fatalf("%s: Encode refused a real placement", name)
		}
		got, size, ok := placeCodec.Decode(data)
		if !ok {
			t.Fatalf("%s: Decode refused its own encoding", name)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: decoded placement differs from the original", name)
		}
		if size <= 0 {
			t.Errorf("%s: decoded cache charge = %d, want > 0", name, size)
		}
	}
	// Non-placement values are not encodable (they just don't spill).
	if _, ok := placeCodec.Encode("not a matrix"); ok {
		t.Error("Encode accepted a non-placement value")
	}
}

// TestPlacementSpillThroughStore wires the production pieces together:
// a placement evicted from a memo cache through store.Spiller revives
// from the durable tier identical to the original — across a store
// reopen, as after a daemon restart.
func TestPlacementSpillThroughStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	key := placeKey(Config{Bits: 6, Style: place.Spiral})

	m7, err := place.NewSpiral(7)
	if err != nil {
		t.Fatal(err)
	}
	// Bound fits either placement alone but not both, so the second
	// insert evicts (and spills) the first.
	c := memo.New("core_place_spill_test", matrixBytes(m7)+8, 0)
	c.SetSpill(store.Spiller{S: st}, placeCodec)
	c.Put(key, m, matrixBytes(m))
	c.Put(placeKey(Config{Bits: 7, Style: place.Spiral}), m7, matrixBytes(m7))

	// Same process: the evicted placement revives from the store.
	got, ok := c.Get(key)
	if !ok || !reflect.DeepEqual(m, got) {
		t.Fatalf("spilled placement did not revive identically (ok=%v)", ok)
	}

	// Fresh process: a new store over the same directory serves it to a
	// cold cache.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := memo.New("core_place_spill_test", 1<<20, 0)
	c2.SetSpill(store.Spiller{S: st2}, placeCodec)
	got2, ok := c2.Get(key)
	if !ok || !reflect.DeepEqual(m, got2) {
		t.Fatalf("restarted spill revive failed (ok=%v)", ok)
	}
}
