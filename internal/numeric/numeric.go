// Package numeric is the numeric-health watchdog: a rolling background
// check that the process's numerical kernels still produce what they
// produced when they were verified. The linalg kernels are hand-rolled
// (no external BLAS), the rho correlation table is a process-wide memo,
// and the caching tiers replay stored results — so a silent corruption
// in any of them (a bad cache entry, a broken revive from the spill
// tier, an ill-conditioned input pushing a kernel past its accuracy)
// would flow straight into reported yields without tripping any error
// path. The watchdog runs small golden-reference problems with known
// exact answers on a fixed cadence and surfaces the measured drift in
// /healthz and the ccdac_numeric_* metrics, turning "the math is still
// right" from an assumption into a monitored signal.
//
// Each Check solves a problem whose exact answer is known analytically
// and reports a normalized drift (relative error against the golden
// answer). Drift within tolerance is healthy; drift beyond it marks
// the check — and the numeric section of /healthz — unhealthy. Checks
// are deliberately tiny (n ≤ 32, microseconds each) so the cadence can
// be aggressive without showing up in serving latency.
package numeric

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Check is one golden-reference drift probe.
type Check struct {
	// Name identifies the check in /healthz and metrics.
	Name string
	// Tol is the drift threshold above which the check is unhealthy;
	// 0 selects DefaultTol.
	Tol float64
	// Run solves the golden problem and returns the normalized drift
	// from the exact answer (0 = bit-perfect). An error marks the check
	// unhealthy regardless of drift.
	Run func() (drift float64, err error)
}

// DefaultTol is the drift threshold used by checks that do not set
// their own: loose enough for honest float64 round-off on the golden
// problems, tight enough that any structural corruption (a wrong
// cache entry, a broken kernel) lands orders of magnitude above it.
const DefaultTol = 1e-8

// Result is the outcome of one check run, shaped for the /healthz
// numeric section.
type Result struct {
	Name  string  `json:"name"`
	Drift float64 `json:"drift"`
	Tol   float64 `json:"tol"`
	OK    bool    `json:"ok"`
	Err   string  `json:"error,omitempty"`
}

// Stats is a watchdog's lifetime accounting.
type Stats struct {
	// Runs counts completed sweeps over all checks; Failures counts
	// individual check runs that were unhealthy (drift over tolerance
	// or an error).
	Runs, Failures int64
}

// Watchdog owns a set of checks and re-runs them on a cadence.
type Watchdog struct {
	checks   []Check
	interval time.Duration

	mu      sync.Mutex
	last    []Result
	lastRun time.Time

	runs, failures atomic.Int64

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New returns a watchdog over the given checks running every interval
// (0 selects one minute). It is idle until Start.
func New(interval time.Duration, checks ...Check) *Watchdog {
	if interval <= 0 {
		interval = time.Minute
	}
	return &Watchdog{
		checks:   checks,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start runs one sweep immediately (so /healthz has data before the
// first tick) and then re-runs on the configured cadence until Stop.
// Subsequent Start calls are no-ops.
func (w *Watchdog) Start() {
	w.startOnce.Do(func() {
		w.RunOnce()
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					w.RunOnce()
				case <-w.stop:
					return
				}
			}
		}()
	})
}

// Stop halts the cadence loop and waits for it to exit. Safe to call
// without Start and safe to call twice.
func (w *Watchdog) Stop() {
	w.mu.Lock()
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.mu.Unlock()
	w.startOnce.Do(func() { close(w.done) }) // never started: unblock done
	<-w.done
}

// RunOnce sweeps every check now and returns the results (also stored
// for Snapshot). Safe for concurrent use.
func (w *Watchdog) RunOnce() []Result {
	out := make([]Result, 0, len(w.checks))
	for _, c := range w.checks {
		out = append(out, runCheck(c))
	}
	w.runs.Add(1)
	for _, r := range out {
		if !r.OK {
			w.failures.Add(1)
		}
	}
	w.mu.Lock()
	w.last = out
	w.lastRun = time.Now()
	w.mu.Unlock()
	return out
}

func runCheck(c Check) Result {
	tol := c.Tol
	if tol <= 0 {
		tol = DefaultTol
	}
	r := Result{Name: c.Name, Tol: tol}
	drift, err := func() (d float64, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("numeric: check %s panicked: %v", c.Name, p)
			}
		}()
		return c.Run()
	}()
	r.Drift = drift
	if err != nil {
		r.Err = err.Error()
		return r
	}
	r.OK = !math.IsNaN(drift) && drift <= tol
	return r
}

// Healthy reports whether every check in the most recent sweep passed
// (vacuously true before the first sweep).
func (w *Watchdog) Healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, r := range w.last {
		if !r.OK {
			return false
		}
	}
	return true
}

// Snapshot returns the most recent sweep's results and when it ran
// (zero time before the first sweep).
func (w *Watchdog) Snapshot() ([]Result, time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Result(nil), w.last...), w.lastRun
}

// Stats returns the watchdog's counters.
func (w *Watchdog) Stats() Stats {
	return Stats{Runs: w.runs.Load(), Failures: w.failures.Load()}
}
