package numeric

import (
	"fmt"
	"math"

	"ccdac/internal/linalg"
	"ccdac/internal/tech"
)

// DefaultChecks returns the stock golden-reference probes covering the
// kernels the analysis pipeline leans on: the sparse CG solver, dense
// Cholesky, dense LU, and the process-wide rho memo table. Each
// problem has an analytically known answer, so drift measures the
// kernel itself, not a reference implementation.
func DefaultChecks() []Check {
	return []Check{
		{Name: "cg_solve", Run: checkCG},
		{Name: "chol_reconstruction", Run: checkChol},
		{Name: "lu_solve", Run: checkLU},
		{Name: "rho_memo", Run: checkRhoMemo},
	}
}

// checkCG solves a shifted 1-D Laplacian (the sparse SPD shape the RC
// extraction produces) against the known solution x* = 1: the rhs is
// built as b = A·1, so any drift is solver error, and a CG run at the
// extraction's own 1e-12 tolerance must land well under DefaultTol.
func checkCG() (float64, error) {
	const n = 32
	s := linalg.NewSparse(n)
	for i := 0; i < n; i++ {
		s.Add(i, i, 2.5)
		if i+1 < n {
			s.AddSym(i, i+1, -1)
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	s.MulVec(ones, b)
	x, err := s.SolveCG(b, 1e-12, 0)
	if err != nil {
		return math.Inf(1), fmt.Errorf("cg golden solve: %w", err)
	}
	return relErr(x, ones), nil
}

// checkChol factors A = M·Mᵀ + I for a fixed M and measures the
// reconstruction error max|A − L·Lᵀ| / max|A|.
func checkChol() (float64, error) {
	const n = 16
	a := linalg.NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Gram matrix of the rows of a fixed full-rank M, plus I:
			// symmetric positive definite by construction.
			sum := 0.0
			for k := 0; k < n; k++ {
				mi := float64((i*7+k*3)%11) + 1
				mj := float64((j*7+k*3)%11) + 1
				sum += mi * mj
			}
			a.Set(i, j, sum)
		}
		a.Add(i, i, float64(n))
	}
	l, err := linalg.Cholesky(a)
	if err != nil {
		return math.Inf(1), fmt.Errorf("chol golden factor: %w", err)
	}
	maxA, maxDiff := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rec := 0.0
			for k := 0; k <= min(i, j); k++ {
				rec += l.At(i, k) * l.At(j, k)
			}
			if v := math.Abs(a.At(i, j)); v > maxA {
				maxA = v
			}
			if d := math.Abs(a.At(i, j) - rec); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff / maxA, nil
}

// checkLU solves a well-conditioned fixed system against x* = (1..n).
func checkLU() (float64, error) {
	const n = 12
	a := linalg.NewDense(n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = float64(i + 1)
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, float64(n))
			} else {
				a.Set(i, j, 1/float64(1+((i*5+j*3)%7)))
			}
		}
	}
	b := a.MulVec(want)
	f, err := linalg.LUFactor(a)
	if err != nil {
		return math.Inf(1), fmt.Errorf("lu golden factor: %w", err)
	}
	x, err := f.Solve(b)
	if err != nil {
		return math.Inf(1), fmt.Errorf("lu golden solve: %w", err)
	}
	return relErr(x, want), nil
}

// checkRhoMemo compares the process-wide quantized rho table against
// the closed form ρ_u^(d/L_c) it memoizes. The table is shared state
// mutated from every request; this is the one check probing live
// process state rather than a pure kernel, so it would catch a
// corrupted or mis-keyed entry that bitwise-identical kernels cannot.
func checkRhoMemo() (float64, error) {
	t := tech.FinFET12()
	rt := t.RhoTable()
	worst := 0.0
	for _, d := range []float64{0, 0.35, 1.7, 12.5, 140, 977} {
		got := rt.Rho(d)
		want := math.Pow(t.Mis.RhoU, d/t.Mis.LcUm)
		if want == 0 {
			continue
		}
		if e := math.Abs(got-want) / want; e > worst {
			worst = e
		}
	}
	return worst, nil
}

// relErr is ‖x − want‖₂ / ‖want‖₂.
func relErr(x, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range want {
		d := x[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
