package numeric

import (
	"fmt"
	"math"
	"math/rand"

	"ccdac/internal/fftk"
	"ccdac/internal/linalg"
	"ccdac/internal/tech"
)

// DefaultChecks returns the stock golden-reference probes covering the
// kernels the analysis pipeline leans on: the sparse CG solver, dense
// Cholesky, dense LU, the process-wide rho memo table, and the FFT
// structured-covariance kernels (transform round trip, circulant
// matvec against the direct sum, spectral-sampler covariance). Each
// problem has an analytically known answer, so drift measures the
// kernel itself, not a reference implementation.
func DefaultChecks() []Check {
	return []Check{
		{Name: "cg_solve", Run: checkCG},
		{Name: "chol_reconstruction", Run: checkChol},
		{Name: "lu_solve", Run: checkLU},
		{Name: "rho_memo", Run: checkRhoMemo},
		{Name: "fft_roundtrip", Run: checkFFTRoundTrip},
		{Name: "circulant_matvec", Run: checkCirculantMatvec},
		// The sampler check is statistical: a fixed seed makes the
		// drift deterministic, but its magnitude is Monte-Carlo noise
		// (~1/√samples), not round-off, hence the dedicated tolerance.
		{Name: "embed_sample_cov", Tol: 0.2, Run: checkEmbedSampleCov},
	}
}

// checkCG solves a shifted 1-D Laplacian (the sparse SPD shape the RC
// extraction produces) against the known solution x* = 1: the rhs is
// built as b = A·1, so any drift is solver error, and a CG run at the
// extraction's own 1e-12 tolerance must land well under DefaultTol.
func checkCG() (float64, error) {
	const n = 32
	s := linalg.NewSparse(n)
	for i := 0; i < n; i++ {
		s.Add(i, i, 2.5)
		if i+1 < n {
			s.AddSym(i, i+1, -1)
		}
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, n)
	s.MulVec(ones, b)
	x, err := s.SolveCG(b, 1e-12, 0)
	if err != nil {
		return math.Inf(1), fmt.Errorf("cg golden solve: %w", err)
	}
	return relErr(x, ones), nil
}

// checkChol factors A = M·Mᵀ + I for a fixed M and measures the
// reconstruction error max|A − L·Lᵀ| / max|A|.
func checkChol() (float64, error) {
	const n = 16
	a := linalg.NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Gram matrix of the rows of a fixed full-rank M, plus I:
			// symmetric positive definite by construction.
			sum := 0.0
			for k := 0; k < n; k++ {
				mi := float64((i*7+k*3)%11) + 1
				mj := float64((j*7+k*3)%11) + 1
				sum += mi * mj
			}
			a.Set(i, j, sum)
		}
		a.Add(i, i, float64(n))
	}
	l, err := linalg.Cholesky(a)
	if err != nil {
		return math.Inf(1), fmt.Errorf("chol golden factor: %w", err)
	}
	maxA, maxDiff := 0.0, 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rec := 0.0
			for k := 0; k <= min(i, j); k++ {
				rec += l.At(i, k) * l.At(j, k)
			}
			if v := math.Abs(a.At(i, j)); v > maxA {
				maxA = v
			}
			if d := math.Abs(a.At(i, j) - rec); d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff / maxA, nil
}

// checkLU solves a well-conditioned fixed system against x* = (1..n).
func checkLU() (float64, error) {
	const n = 12
	a := linalg.NewDense(n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = float64(i + 1)
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, float64(n))
			} else {
				a.Set(i, j, 1/float64(1+((i*5+j*3)%7)))
			}
		}
	}
	b := a.MulVec(want)
	f, err := linalg.LUFactor(a)
	if err != nil {
		return math.Inf(1), fmt.Errorf("lu golden factor: %w", err)
	}
	x, err := f.Solve(b)
	if err != nil {
		return math.Inf(1), fmt.Errorf("lu golden solve: %w", err)
	}
	return relErr(x, want), nil
}

// checkRhoMemo compares the process-wide quantized rho table against
// the closed form ρ_u^(d/L_c) it memoizes. The table is shared state
// mutated from every request; this is the one check probing live
// process state rather than a pure kernel, so it would catch a
// corrupted or mis-keyed entry that bitwise-identical kernels cannot.
func checkRhoMemo() (float64, error) {
	t := tech.FinFET12()
	rt := t.RhoTable()
	worst := 0.0
	for _, d := range []float64{0, 0.35, 1.7, 12.5, 140, 977} {
		got := rt.Rho(d)
		want := math.Pow(t.Mis.RhoU, d/t.Mis.LcUm)
		if want == 0 {
			continue
		}
		if e := math.Abs(got-want) / want; e > worst {
			worst = e
		}
	}
	return worst, nil
}

// checkFFTRoundTrip pushes a fixed impulse-plus-tone vector through
// Forward then Inverse on a pow2 and a Bluestein length: the exact
// answer is the input itself, so any drift is transform error.
func checkFFTRoundTrip() (float64, error) {
	worst := 0.0
	for _, n := range []int{32, 24} {
		p, err := fftk.NewPlan(n)
		if err != nil {
			return math.Inf(1), fmt.Errorf("fft golden plan(%d): %w", n, err)
		}
		x := make([]complex128, n)
		want := make([]float64, 2*n)
		for i := range x {
			re := math.Cos(2*math.Pi*3*float64(i)/float64(n)) + float64(i%5)
			im := math.Sin(2 * math.Pi * float64(i) / float64(n))
			x[i] = complex(re, im)
			want[2*i], want[2*i+1] = re, im
		}
		p.Forward(x)
		p.Inverse(x)
		got := make([]float64, 2*n)
		for i, v := range x {
			got[2*i], got[2*i+1] = real(v), imag(v)
		}
		if e := relErr(got, want); e > worst {
			worst = e
		}
	}
	return worst, nil
}

// checkCirculantMatvec compares the embedding's spectral matvec of the
// stock mismatch kernel against the direct O(n²) covariance sum on a
// 4×6 grid — the identity the structured analysis path rests on.
func checkCirculantMatvec() (float64, error) {
	t := tech.FinFET12()
	sigmaU2 := t.SigmaU() * t.SigmaU()
	kernel := func(d2 float64) float64 {
		return sigmaU2 * math.Pow(t.Mis.RhoU, math.Sqrt(d2)/t.Mis.LcUm)
	}
	g := fftk.Grid{Rows: 4, Cols: 6, DX: t.Unit.W, DY: t.Unit.H}
	e, err := fftk.NewEmbedding(g, kernel, fftk.EmbedOptions{})
	if err != nil {
		return math.Inf(1), fmt.Errorf("fft golden embedding: %w", err)
	}
	n := g.Rows * g.Cols
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((i*7)%5) - 2
	}
	got := make([]float64, n)
	e.MulVec(got, x)
	want := make([]float64, n)
	for a := 0; a < n; a++ {
		ra, ca := a/g.Cols, a%g.Cols
		s := 0.0
		for b := 0; b < n; b++ {
			rb, cb := b/g.Cols, b%g.Cols
			dx := float64(ca-cb) * g.DX
			dy := float64(ra-rb) * g.DY
			s += kernel(dx*dx+dy*dy) * x[b]
		}
		want[a] = s
	}
	return relErr(got, want), nil
}

// checkEmbedSampleCov draws a fixed-seed batch of spectral samples on
// a 4×4 grid and measures the worst covariance-entry error against
// the kernel, normalized by the variance. The drift is deterministic
// (fixed stream) but statistically sized; its tolerance lives on the
// check, not DefaultTol.
func checkEmbedSampleCov() (float64, error) {
	t := tech.FinFET12()
	sigmaU2 := t.SigmaU() * t.SigmaU()
	kernel := func(d2 float64) float64 {
		return sigmaU2 * math.Pow(t.Mis.RhoU, math.Sqrt(d2)/t.Mis.LcUm)
	}
	g := fftk.Grid{Rows: 4, Cols: 4, DX: t.Unit.W, DY: t.Unit.H}
	e, err := fftk.NewEmbedding(g, kernel, fftk.EmbedOptions{})
	if err != nil {
		return math.Inf(1), fmt.Errorf("fft golden sampler embedding: %w", err)
	}
	if !e.CanSample() {
		return math.Inf(1), fmt.Errorf("fft golden sampler: embedding not sampleable (rel err %g)", e.SampleRelErr)
	}
	const samples = 512
	n := g.Rows * g.Cols
	rng := rand.New(rand.NewSource(42))
	field := make([]float64, n)
	acc := make([]float64, n*n)
	for s := 0; s < samples; s++ {
		e.Sample(field, rng)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				acc[i*n+j] += field[i] * field[j]
			}
		}
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		ri, ci := i/g.Cols, i%g.Cols
		for j := i; j < n; j++ {
			rj, cj := j/g.Cols, j%g.Cols
			dx := float64(ci-cj) * g.DX
			dy := float64(ri-rj) * g.DY
			want := kernel(dx*dx + dy*dy)
			if e := math.Abs(acc[i*n+j]/samples-want) / sigmaU2; e > worst {
				worst = e
			}
		}
	}
	return worst, nil
}

// relErr is ‖x − want‖₂ / ‖want‖₂.
func relErr(x, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range want {
		d := x[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
