package numeric

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDefaultChecksPass(t *testing.T) {
	for _, c := range DefaultChecks() {
		drift, err := c.Run()
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		tol := c.Tol
		if tol == 0 {
			tol = DefaultTol
		}
		if drift > tol {
			t.Errorf("%s drift = %g, want <= %g", c.Name, drift, tol)
		}
		t.Logf("%s drift = %.3g", c.Name, drift)
	}
}

func TestWatchdogDetectsDrift(t *testing.T) {
	var drift float64
	var mu sync.Mutex
	w := New(time.Hour, Check{
		Name: "synthetic",
		Tol:  1e-6,
		Run: func() (float64, error) {
			mu.Lock()
			defer mu.Unlock()
			return drift, nil
		},
	})
	res := w.RunOnce()
	if len(res) != 1 || !res[0].OK {
		t.Fatalf("healthy check reported unhealthy: %+v", res)
	}
	if !w.Healthy() {
		t.Fatal("watchdog unhealthy after a passing sweep")
	}

	mu.Lock()
	drift = 1e-3 // three orders over tolerance
	mu.Unlock()
	res = w.RunOnce()
	if res[0].OK {
		t.Fatalf("drifted check reported healthy: %+v", res[0])
	}
	if w.Healthy() {
		t.Fatal("watchdog healthy despite drifted check")
	}
	st := w.Stats()
	if st.Runs != 2 || st.Failures != 1 {
		t.Fatalf("Stats = %+v, want Runs=2 Failures=1", st)
	}
}

func TestWatchdogCheckErrorAndPanic(t *testing.T) {
	w := New(time.Hour,
		Check{Name: "errors", Run: func() (float64, error) {
			return 0, errors.New("golden input unavailable")
		}},
		Check{Name: "panics", Run: func() (float64, error) {
			panic("index out of range")
		}},
	)
	res := w.RunOnce()
	for _, r := range res {
		if r.OK {
			t.Errorf("%s reported healthy, want failure: %+v", r.Name, r)
		}
		if r.Err == "" {
			t.Errorf("%s has no error string", r.Name)
		}
	}
}

func TestWatchdogCadence(t *testing.T) {
	var runs sync.WaitGroup
	runs.Add(3)
	var once sync.Mutex
	n := 0
	w := New(5*time.Millisecond, Check{
		Name: "tick",
		Run: func() (float64, error) {
			once.Lock()
			if n < 3 {
				runs.Done()
			}
			n++
			once.Unlock()
			return 0, nil
		},
	})
	w.Start()
	done := make(chan struct{})
	go func() { runs.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never reached 3 sweeps")
	}
	w.Stop()
	if _, at := w.Snapshot(); at.IsZero() {
		t.Fatal("Snapshot has no last-run time after sweeps")
	}
	// Stop must be idempotent and safe on a never-started watchdog.
	w.Stop()
	New(time.Hour).Stop()
}
