// Package extract computes the electrical view of a routed
// common-centroid layout: the parasitic summary metrics of the paper's
// Table I (ΣC^TS, ΣC^wire, ΣC^BB, ΣN_V, ΣL, and per-critical-bit R_V /
// R_total) and the per-bit RC networks whose Elmore delays set the 3dB
// frequency (Sec. III-B).
//
// Modeling follows the paper's Sec. II-B: a wire segment of length l
// has resistance r·l and ground capacitance c·l; two parallel segments
// with overlap l_ov at spacing s couple through c_c(s)·l_ov. Vias have
// a fixed per-cut resistance, reduced p^2-fold by parallel via arrays.
package extract

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ccdac/internal/fault"
	"ccdac/internal/geom"
	"ccdac/internal/obs"
	"ccdac/internal/par"
	"ccdac/internal/rcnet"
	"ccdac/internal/route"
)

// couplingReach is the largest wire spacing (in units of minimum
// spacing) at which sidewall coupling is still extracted; beyond it the
// 1/s fringe term is negligible.
const couplingReach = 6.0

// BitNet is the extracted bottom-plate charging network of one capacitor.
type BitNet struct {
	Bit int
	// Net is the RC network; Root is the driver node (below the input
	// connection via); CellNodes are the bottom-plate nodes of the
	// bit's unit cells, carrying the C_u loads.
	Net       *rcnet.Net
	Root      int
	CellNodes []int
	// RWireOhm and RViaOhm total the wire and via resistances of the
	// net (the R_total and R_V of Table I are these sums for the
	// critical bit).
	RWireOhm, RViaOhm float64
	// CWirefF is the bit's routed bottom-plate wire capacitance.
	CWirefF float64
	// TauSec is the Elmore delay to the slowest unit cell.
	TauSec float64
}

// Summary carries the Table I metrics plus the per-bit networks.
type Summary struct {
	// CTSfF is the total top-plate-to-substrate routing capacitance.
	CTSfF float64
	// CWirefF is the total bottom-plate wiring capacitance.
	CWirefF float64
	// CBBfF is the total bottom-plate-to-bottom-plate (inter-bit)
	// coupling capacitance.
	CBBfF float64
	// ViaCuts is ΣN_V: total physical via cuts.
	ViaCuts int
	// WirelengthUm is ΣL: total routed wirelength.
	WirelengthUm float64
	// AreaUm2 is the routed array area.
	AreaUm2 float64
	// Bits holds the per-capacitor extracted networks, indexed by bit.
	Bits []BitNet
	// Warnings records solver degradations taken during extraction
	// (e.g. a CG→dense-Cholesky fallback in a bit's moment solve).
	Warnings []string
	// CGIterations and CGFallbacks total the sparse-solver effort and
	// CG→Cholesky degradations across every bit's delay solve — the
	// structured counterparts of the fallback prose in Warnings, so
	// tests and dashboards assert on numbers instead of strings.
	CGIterations, CGFallbacks int
}

// CriticalBit returns the capacitor with the largest Elmore delay; its
// time constant limits the DAC clock (Sec. III-B). A summary with no
// extracted bit networks has no critical bit and reports -1.
func (s *Summary) CriticalBit() int {
	if len(s.Bits) == 0 {
		return -1
	}
	best, bestTau := 0, -1.0
	for _, b := range s.Bits {
		if b.TauSec > bestTau {
			best, bestTau = b.Bit, b.TauSec
		}
	}
	return best
}

// Tau returns the limiting (maximum) Elmore time constant in seconds,
// or 0 when no bit networks were extracted.
func (s *Summary) Tau() float64 {
	crit := s.CriticalBit()
	if crit < 0 || crit >= len(s.Bits) {
		return 0
	}
	return s.Bits[crit].TauSec
}

// Extract computes the full electrical view of a routed layout.
func Extract(l *route.Layout) (*Summary, error) {
	return ExtractContext(context.Background(), l)
}

// ExtractContext is Extract under a context carrying the observability
// trace: the coupling sweep and the per-bit network builds are recorded
// as nested spans, and solver effort lands in the trace's metrics.
func ExtractContext(ctx context.Context, l *route.Layout) (*Summary, error) {
	if err := fault.Check(fault.StageExtract); err != nil {
		return nil, fmt.Errorf("extract: %w", err)
	}
	s := &Summary{
		ViaCuts:      l.ViaCuts(),
		WirelengthUm: l.TotalWirelength(),
		AreaUm2:      l.Area(),
	}
	// Ground-capacitance sums and the coupling extraction.
	_, span := obs.StartSpan(ctx, "extract.couple")
	wireCoupling, pairs := couple(l, s)
	span.End()
	obs.Count(ctx, "ccdac_extract_coupling_pairs_total", int64(pairs))
	for _, w := range l.Wires {
		if w.Bit == route.TopPlateBit {
			s.CTSfF += l.Tech.TopPlateCfFPerUm * w.Seg.Len()
			continue
		}
		s.CWirefF += l.Tech.WireC(w.Layer, effLen(l, w), w.Par)
	}

	// Per-bit network builds are independent (each assembles and solves
	// its own rcnet from the shared read-only layout), so they fan out
	// across the context's worker budget; results land by bit index and
	// warnings/solver stats are folded in bit order afterwards, keeping
	// the summary identical at any worker count.
	_, span = obs.StartSpan(ctx, "extract.bitnets")
	s.Bits = make([]BitNet, l.M.Bits+1)
	nets := make([]*BitNet, l.M.Bits+1)
	if err := par.ForN(par.Workers(ctx), l.M.Bits+1, func(bit int) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("extract: bit %d: %w", bit, cerr)
		}
		bn, berr := buildBitNet(l, bit, wireCoupling)
		if berr != nil {
			return fmt.Errorf("extract: bit %d: %w", bit, berr)
		}
		nets[bit] = bn
		return nil
	}); err != nil {
		span.Fail(err)
		span.End()
		return nil, err
	}
	nodes := 0
	maxResidual := 0.0
	for bit, bn := range nets {
		s.Bits[bit] = *bn
		nodes += bn.Net.NumNodes()
		st := bn.Net.Stats()
		s.CGIterations += st.CGIterations
		s.CGFallbacks += st.CGFallbacks
		for _, sv := range st.Solves {
			// Per-solve distributions, not just the run totals: a single
			// near-cap solve hiding inside a healthy average is exactly
			// what the numeric-health histograms exist to expose.
			obs.Observe(ctx, "ccdac_numeric_cg_solve_iterations", float64(sv.Iterations))
			obs.Observe(ctx, "ccdac_numeric_cg_residual", sv.Residual)
			if sv.Residual > maxResidual {
				maxResidual = sv.Residual
			}
		}
		for _, w := range bn.Net.Warnings() {
			s.Warnings = append(s.Warnings, fmt.Sprintf("extract: bit %d: %s", bit, w))
		}
	}
	span.End()
	obs.Count(ctx, "ccdac_extract_nodes_total", int64(nodes))
	obs.Count(ctx, "ccdac_linalg_cg_iterations_total", int64(s.CGIterations))
	obs.Count(ctx, "ccdac_rcnet_cg_fallback_total", int64(s.CGFallbacks))
	obs.SetGauge(ctx, "ccdac_numeric_cg_max_residual", maxResidual)
	return s, nil
}

// Coupling runs just the coupling sweep of a routed layout and returns
// the total inter-bit coupling ΣC^BB in fF and the number of coupled
// wire pairs — the benchmark and diagnostic surface of couple.
func Coupling(l *route.Layout) (cbbFF float64, pairs int) {
	var s Summary
	_, p := couple(l, &s)
	return s.CBBfF, p
}

// coupleEntry is one bottom-plate wire in the coupling interval index:
// its original wire slot and its perpendicular track coordinate (y for
// horizontal wires, x for vertical ones).
type coupleEntry struct {
	idx  int
	perp float64
}

// couple extracts pairwise sidewall coupling between bottom-plate wires
// of different capacitors (the C^BB of Table I), returning each wire's
// share of coupling capacitance (treated as grounded for delay) and
// the number of coupled wire pairs found.
//
// Only parallel same-layer wires within couplingReach spacings couple,
// so instead of the seed's O(W²) all-pairs scan the wires are bucketed
// per (layer, direction) and sorted by their perpendicular coordinate;
// each wire is then compared only against the neighbors inside its
// reach window — O(W log W + W·k) for k wires per window. The pair set
// is exactly the seed's (the window bound is the same separation
// cutoff), only the accumulation order differs.
func couple(l *route.Layout, s *Summary) ([]float64, int) {
	pairs := 0
	share := make([]float64, len(l.Wires))
	nLayers := len(l.Tech.Layers)
	// Bucket index: layer × direction. geom.Seg classifies zero-length
	// segments as horizontal, matching Separation's pairing rules.
	buckets := make([][]coupleEntry, 2*nLayers)
	for i, w := range l.Wires {
		if w.Bit == route.TopPlateBit || w.Layer < 0 || w.Layer >= nLayers {
			continue
		}
		perp := w.Seg.A.Y
		b := 2 * w.Layer
		if w.Seg.Dir() == geom.Vertical {
			perp = w.Seg.A.X
			b++
		}
		buckets[b] = append(buckets[b], coupleEntry{idx: i, perp: perp})
	}
	reach := couplingReach * l.Tech.SMinUm
	for _, es := range buckets {
		sort.Slice(es, func(a, b int) bool {
			if es[a].perp != es[b].perp {
				return es[a].perp < es[b].perp
			}
			return es[a].idx < es[b].idx
		})
		for i := 0; i < len(es); i++ {
			wi := l.Wires[es[i].idx]
			for j := i + 1; j < len(es) && es[j].perp-es[i].perp <= reach; j++ {
				sep := es[j].perp - es[i].perp
				if sep == 0 {
					// Same track: abutting, not sidewall-coupled.
					continue
				}
				wj := l.Wires[es[j].idx]
				if wj.Bit == wi.Bit {
					continue
				}
				ov := wi.Seg.OverlapLen(wj.Seg)
				if ov <= 0 {
					continue
				}
				c := l.Tech.CouplingfFPerUm(sep) * ov
				s.CBBfF += c
				share[es[i].idx] += c / 2
				share[es[j].idx] += c / 2
				pairs++
			}
		}
	}
	return share, pairs
}

// effLen is the electrical length of a wire. Abutment connections
// between adjacent unit capacitors join two wide multi-finger,
// multi-layer MOM plates through a short jumper; their resistance and
// capacitance follow the jumper length (Unit.AbutLen), not the drawn
// center-to-center distance — this is why the paper's spiral placement
// has near-zero intra-group routing resistance (Sec. IV-B1/V).
func effLen(l *route.Layout, w route.Wire) float64 {
	if w.Kind == route.KindAbut {
		return math.Min(w.Seg.Len(), l.Tech.Unit.AbutLen)
	}
	return w.Seg.Len()
}

// nodeKey quantizes a point to 1 nm so float arithmetic cannot split
// electrically-identical junctions into distinct nodes.
type nodeKey struct {
	layer int // -1 for cell plate nodes (all layers tied at the cell)
	x, y  int64
}

func quant(v float64) int64 { return int64(math.Round(v * 1000)) }

// buildBitNet assembles the RC charging network of one capacitor from
// the routed wires and vias and runs the Elmore analysis.
func buildBitNet(l *route.Layout, bit int, wireCoupling []float64) (*BitNet, error) {
	bn := &BitNet{Bit: bit}
	net := rcnet.New()
	bn.Net = net
	nodes := map[nodeKey]int{}

	// Bottom plates are reachable on every layer at the cell, so any
	// wire endpoint landing on a cell center of this bit merges into
	// the cell's single plate node.
	cellAt := map[[2]int64]int{}
	for _, c := range l.M.CellsOf(bit) {
		pt := l.CellCenter(c)
		id := net.AddNode(fmt.Sprintf("cell:%d,%d", c.Row, c.Col))
		net.AddC(id, l.Tech.Unit.CfF)
		cellAt[[2]int64{quant(pt.X), quant(pt.Y)}] = id
		bn.CellNodes = append(bn.CellNodes, id)
	}
	nodeOf := func(p geom.Pt, layer int) int {
		if id, ok := cellAt[[2]int64{quant(p.X), quant(p.Y)}]; ok {
			return id
		}
		k := nodeKey{layer: layer, x: quant(p.X), y: quant(p.Y)}
		if id, ok := nodes[k]; ok {
			return id
		}
		id := net.AddNode(fmt.Sprintf("L%d:%.3f,%.3f", layer, p.X, p.Y))
		nodes[k] = id
		return id
	}

	for i, w := range l.Wires {
		if w.Bit != bit {
			continue
		}
		a := nodeOf(w.Seg.A, w.Layer)
		b := nodeOf(w.Seg.B, w.Layer)
		r := l.Tech.WireR(w.Layer, effLen(l, w), w.Par)
		c := l.Tech.WireC(w.Layer, effLen(l, w), w.Par) + wireCoupling[i]
		net.AddR(a, b, r)
		net.AddC(a, c/2)
		net.AddC(b, c/2)
		bn.RWireOhm += r
		bn.CWirefF += c
	}
	// The driver (switch) sits behind the input connection; its
	// on-resistance does not scale with parallel routing, bounding the
	// Fig. 6(a) gains.
	root := net.AddNode("source")
	driver := net.AddNode("driver")
	net.AddR(root, driver, l.Tech.SwitchROhm)
	bn.Root = root
	for _, v := range l.Vias {
		if v.Bit != bit {
			continue
		}
		r := l.Tech.ViaR(v.Par)
		bn.RViaOhm += r
		if v.Input {
			net.AddR(driver, nodeOf(v.At, v.LayerA), r)
			continue
		}
		net.AddR(nodeOf(v.At, v.LayerA), nodeOf(v.At, v.LayerB), r)
	}
	delays, err := bn.Net.Delay(root)
	if err != nil {
		return nil, err
	}
	bn.TauSec = rcnet.MaxDelay(delays, bn.CellNodes)
	return bn, nil
}

// F3dB converts the limiting time constant of an N-bit DAC into the
// paper's 3dB switching frequency (Eq. 16):
// f_3dB = 1 / (2 (N+2) ln 2 · tau).
func F3dB(bits int, tauSec float64) float64 {
	if tauSec <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * float64(bits+2) * math.Ln2 * tauSec)
}

// SettlingTime returns t_settle = ln(2^(N+2))·tau (Eq. 15), the time to
// charge within 1/4 LSB of the final value.
func SettlingTime(bits int, tauSec float64) float64 {
	return float64(bits+2) * math.Ln2 * tauSec
}
