package extract

import (
	"context"
	"math"
	"sync"
	"testing"

	"ccdac/internal/par"
	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

// quadraticCouple is the seed's O(W²) all-pairs coupling sweep, kept
// here as the reference the binned interval-index sweep must match.
func quadraticCouple(l *route.Layout) (share []float64, cbb float64, pairs int) {
	share = make([]float64, len(l.Wires))
	for i := 0; i < len(l.Wires); i++ {
		wi := l.Wires[i]
		if wi.Bit == route.TopPlateBit {
			continue
		}
		for j := i + 1; j < len(l.Wires); j++ {
			wj := l.Wires[j]
			if wj.Bit == route.TopPlateBit || wj.Bit == wi.Bit {
				continue
			}
			if wi.Layer != wj.Layer {
				continue
			}
			sep := wi.Seg.Separation(wj.Seg)
			if sep == 0 || sep > couplingReach*l.Tech.SMinUm {
				continue
			}
			ov := wi.Seg.OverlapLen(wj.Seg)
			if ov <= 0 {
				continue
			}
			c := l.Tech.CouplingfFPerUm(sep) * ov
			cbb += c
			share[i] += c / 2
			share[j] += c / 2
			pairs++
		}
	}
	return share, cbb, pairs
}

// TestCoupleMatchesQuadraticReference: the binned sweep finds exactly
// the seed's pair set on every style; totals and per-wire shares agree
// to accumulation-order rounding.
func TestCoupleMatchesQuadraticReference(t *testing.T) {
	for _, tc := range []struct {
		name  string
		style place.Style
		bits  int
		par   []int
	}{
		{"spiral8", place.Spiral, 8, nil},
		{"chessboard6", place.Chessboard, 6, nil},
		{"bc8", place.BlockChessboard, 8, nil},
		{"spiral8-parallel", place.Spiral, 8, []int{0, 0, 0, 0, 0, 0, 0, 2, 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l := layoutFor(t, tc.bits, tc.style, tc.par)
			var s Summary
			share, pairs := couple(l, &s)
			refShare, refCBB, refPairs := quadraticCouple(l)
			if pairs != refPairs {
				t.Fatalf("pairs = %d, quadratic reference %d", pairs, refPairs)
			}
			if math.Abs(s.CBBfF-refCBB) > 1e-9*math.Max(1, refCBB) {
				t.Errorf("CBBfF = %.15g, reference %.15g", s.CBBfF, refCBB)
			}
			for i := range share {
				if math.Abs(share[i]-refShare[i]) > 1e-12 {
					t.Errorf("wire %d share = %.15g, reference %.15g", i, share[i], refShare[i])
				}
			}
		})
	}
}

// TestCouplingHelper: the public benchmark surface agrees with couple.
func TestCouplingHelper(t *testing.T) {
	l := layoutFor(t, 8, place.Spiral, nil)
	cbb, pairs := Coupling(l)
	_, refCBB, refPairs := quadraticCouple(l)
	if pairs != refPairs || math.Abs(cbb-refCBB) > 1e-9*math.Max(1, refCBB) {
		t.Errorf("Coupling = (%g, %d), reference (%g, %d)", cbb, pairs, refCBB, refPairs)
	}
}

// TestEmptySummaryGuards: Tau and CriticalBit on a Summary with no
// bit networks degrade to sentinels instead of panicking.
func TestEmptySummaryGuards(t *testing.T) {
	var s Summary
	if got := s.CriticalBit(); got != -1 {
		t.Errorf("empty CriticalBit() = %d, want -1", got)
	}
	if got := s.Tau(); got != 0 {
		t.Errorf("empty Tau() = %g, want 0", got)
	}
}

// TestExtractSerialParallelEquivalent: the per-bit network build gives
// identical electrical results at any worker count.
func TestExtractSerialParallelEquivalent(t *testing.T) {
	l := layoutFor(t, 8, place.Spiral, nil)
	serial, err := ExtractContext(par.WithWorkers(context.Background(), -1), l)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExtractContext(par.WithWorkers(context.Background(), 8), l)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Bits) != len(parallel.Bits) {
		t.Fatalf("bit count %d vs %d", len(parallel.Bits), len(serial.Bits))
	}
	for b := range serial.Bits {
		if serial.Bits[b].TauSec != parallel.Bits[b].TauSec {
			t.Errorf("bit %d: tau %.17g parallel vs %.17g serial", b, parallel.Bits[b].TauSec, serial.Bits[b].TauSec)
		}
		if serial.Bits[b].RWireOhm != parallel.Bits[b].RWireOhm {
			t.Errorf("bit %d: R %.17g parallel vs %.17g serial", b, parallel.Bits[b].RWireOhm, serial.Bits[b].RWireOhm)
		}
	}
	if serial.CriticalBit() != parallel.CriticalBit() {
		t.Errorf("critical bit %d vs %d", parallel.CriticalBit(), serial.CriticalBit())
	}
}

// TestConcurrentExtractAndAnalyzeShareTechnology drives Extract and
// the covariance analysis concurrently on one *tech.Technology, so the
// race detector exercises the shared rho memo table and the parallel
// hot loops together.
func TestConcurrentExtractAndAnalyzeShareTechnology(t *testing.T) {
	tch := tech.FinFET12()
	pm, err := place.NewSpiral(6)
	if err != nil {
		t.Fatal(err)
	}
	l, err := route.Route(pm, tch, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := Extract(l); err != nil {
				errc <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := variation.Analyze(pm, variation.GridPositioner(tch), tch, 0); err != nil {
				errc <- err
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
