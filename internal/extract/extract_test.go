package extract

import (
	"math"
	"testing"

	"ccdac/internal/place"
	"ccdac/internal/route"
	"ccdac/internal/tech"
)

func extracted(t *testing.T, bits int, style place.Style, par []int) *Summary {
	t.Helper()
	l := layoutFor(t, bits, style, par)
	s, err := Extract(l)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func layoutFor(t *testing.T, bits int, style place.Style, par []int) *route.Layout {
	t.Helper()
	var l *route.Layout
	switch style {
	case place.Spiral:
		pm, err := place.NewSpiral(bits)
		if err != nil {
			t.Fatal(err)
		}
		l, err = route.Route(pm, tech.FinFET12(), par)
		if err != nil {
			t.Fatal(err)
		}
	case place.Chessboard:
		pm, err := place.NewChessboard(bits)
		if err != nil {
			t.Fatal(err)
		}
		l, err = route.Route(pm, tech.FinFET12(), par)
		if err != nil {
			t.Fatal(err)
		}
	default:
		pm, err := place.NewBlockChessboard(bits, place.BCParams{CoreBits: 4, BlockCells: 2})
		if err != nil {
			t.Fatal(err)
		}
		l, err = route.Route(pm, tech.FinFET12(), par)
		if err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestExtractSpiral6(t *testing.T) {
	s := extracted(t, 6, place.Spiral, nil)
	if len(s.Bits) != 7 {
		t.Fatalf("bit nets = %d, want 7", len(s.Bits))
	}
	for bit, b := range s.Bits {
		if b.TauSec <= 0 {
			t.Errorf("bit %d: non-positive tau %g", bit, b.TauSec)
		}
		if len(b.CellNodes) == 0 {
			t.Errorf("bit %d: no cell nodes", bit)
		}
		// Total capacitance of the net includes all units' C_u.
		want := float64(len(b.CellNodes)) * 5.0
		if b.Net.TotalCapFF() < want {
			t.Errorf("bit %d: net cap %g below unit load %g", bit, b.Net.TotalCapFF(), want)
		}
	}
	if s.CTSfF <= 0 || s.CWirefF <= 0 || s.WirelengthUm <= 0 || s.ViaCuts <= 0 {
		t.Errorf("degenerate summary: %+v", s)
	}
}

func TestElectricalOrderingAcrossStyles(t *testing.T) {
	// Table I shape: spiral best (lowest C_wire, C_BB, vias, R), then
	// block chessboard, chessboard worst.
	sp := extracted(t, 8, place.Spiral, nil)
	bc := extracted(t, 8, place.BlockChessboard, nil)
	cb := extracted(t, 8, place.Chessboard, nil)

	if !(sp.CWirefF < bc.CWirefF && bc.CWirefF < cb.CWirefF) {
		t.Errorf("C_wire ordering: S=%g BC=%g CB=%g", sp.CWirefF, bc.CWirefF, cb.CWirefF)
	}
	if !(sp.ViaCuts < bc.ViaCuts && bc.ViaCuts < cb.ViaCuts) {
		t.Errorf("via ordering: S=%d BC=%d CB=%d", sp.ViaCuts, bc.ViaCuts, cb.ViaCuts)
	}
	// At p=1 the shared bridge rail dominates both BC and chessboard;
	// the decisive BC-vs-chessboard gap appears once parallel routing
	// is applied (the paper's table condition, asserted in core).
	// The spiral must already be clearly fastest here.
	if !(sp.Tau() < 0.7*bc.Tau() && sp.Tau() < 0.7*cb.Tau()) {
		t.Errorf("tau ordering: S=%g BC=%g CB=%g", sp.Tau(), bc.Tau(), cb.Tau())
	}
	if sp.CBBfF > cb.CBBfF {
		t.Errorf("C_BB: S=%g above CB=%g", sp.CBBfF, cb.CBBfF)
	}
}

func TestF3dBFormula(t *testing.T) {
	// Eq. 16 at N=6, tau=2.3e-12: f = 1/(2*8*ln2*tau).
	tau := 2.3e-12
	want := 1 / (2 * 8 * math.Ln2 * tau)
	if got := F3dB(6, tau); math.Abs(got-want) > 1e-6*want {
		t.Errorf("F3dB = %g, want %g", got, want)
	}
	if !math.IsInf(F3dB(6, 0), 1) {
		t.Error("zero tau must give +Inf frequency")
	}
	// Settling time: t_settle = (N+2) ln2 tau; f_3dB = 1/(2 t_settle).
	if got := SettlingTime(6, tau); math.Abs(got-8*math.Ln2*tau) > 1e-20 {
		t.Errorf("SettlingTime = %g", got)
	}
	if got := F3dB(6, tau) * 2 * SettlingTime(6, tau); math.Abs(got-1) > 1e-12 {
		t.Errorf("f3dB * 2*t_settle = %g, want 1", got)
	}
}

func TestParallelWiresImproveTau(t *testing.T) {
	base := extracted(t, 6, place.Spiral, nil)
	crit := base.CriticalBit()
	par := make([]int, 7)
	par[crit] = 2
	fast := extracted(t, 6, place.Spiral, par)
	gain := base.Bits[crit].TauSec / fast.Bits[crit].TauSec
	// Paper Fig 6(a): gain between ~1.5x and 4x for p=2 (between the
	// wire-dominated 2x and via-dominated 4x, minus added capacitance).
	if gain < 1.2 || gain > 4.5 {
		t.Errorf("p=2 tau gain = %g, want within (1.2, 4.5)", gain)
	}
}

func TestCriticalBitIsMSBish(t *testing.T) {
	// The critical bit carries the largest RC network; it must be one
	// of the top few bits.
	for _, style := range []place.Style{place.Spiral, place.Chessboard} {
		s := extracted(t, 8, style, nil)
		if crit := s.CriticalBit(); crit < 5 {
			t.Errorf("%v: critical bit %d implausibly small", style, crit)
		}
	}
}

func TestRTotalsPositiveAndOrdered(t *testing.T) {
	sp := extracted(t, 8, place.Spiral, nil)
	cb := extracted(t, 8, place.Chessboard, nil)
	spCrit := sp.Bits[sp.CriticalBit()]
	cbCrit := cb.Bits[cb.CriticalBit()]
	if spCrit.RWireOhm <= 0 || spCrit.RViaOhm <= 0 {
		t.Error("spiral critical-bit resistances must be positive")
	}
	spTotal := spCrit.RWireOhm + spCrit.RViaOhm
	cbTotal := cbCrit.RWireOhm + cbCrit.RViaOhm
	if spTotal >= cbTotal {
		t.Errorf("critical-bit R: spiral %g not below chessboard %g", spTotal, cbTotal)
	}
	if spCrit.RViaOhm >= cbCrit.RViaOhm {
		t.Errorf("critical-bit R_V: spiral %g not below chessboard %g", spCrit.RViaOhm, cbCrit.RViaOhm)
	}
}

func TestCouplingSymmetricAndBounded(t *testing.T) {
	s := extracted(t, 8, place.Chessboard, nil)
	if s.CBBfF <= 0 {
		t.Error("chessboard must exhibit trunk-to-trunk coupling")
	}
	// Coupling cannot exceed total wire capacitance by an order of
	// magnitude (sanity bound).
	if s.CBBfF > 10*s.CWirefF {
		t.Errorf("C_BB %g implausibly large vs C_wire %g", s.CBBfF, s.CWirefF)
	}
}

func TestTopPlateCapScalesWithArray(t *testing.T) {
	small := extracted(t, 6, place.Spiral, nil)
	large := extracted(t, 8, place.Spiral, nil)
	if large.CTSfF <= small.CTSfF {
		t.Errorf("C_TS must grow with array size: 6-bit %g, 8-bit %g", small.CTSfF, large.CTSfF)
	}
}
