package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d, want 7", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != 0 {
		t.Errorf("unset budget = %d, want 0", got)
	}
	if got := Workers(ctx); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(unset) = %d, want GOMAXPROCS", got)
	}
	ctx = WithWorkers(ctx, 3)
	if got := FromContext(ctx); got != 3 {
		t.Errorf("budget = %d, want 3", got)
	}
	if got := Workers(WithWorkers(ctx, -1)); got != 1 {
		t.Errorf("Workers(-1) = %d, want 1 (serial)", got)
	}
}

func TestForNRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		var counts [n]atomic.Int64
		if err := ForN(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForNIndexAddressedDeterminism(t *testing.T) {
	const n = 257
	want := make([]int, n)
	if err := ForN(1, n, func(i int) error { want[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	got := make([]int, n)
	if err := ForN(8, n, func(i int) error { got[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: parallel %d != serial %d", i, got[i], want[i])
		}
	}
}

func TestForNFirstErrorStopsClaiming(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	// Every index past 4 fails, so each of the 4 workers exits on its
	// first failing claim: at most 5 successes + 4 failures ever run.
	err := ForN(4, 10_000, func(i int) error {
		ran.Add(1)
		if i >= 5 {
			return fmt.Errorf("index %d: %w", i, sentinel)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want wrapped sentinel", err)
	}
	if r := ran.Load(); r > 9 {
		t.Errorf("%d indices ran; workers kept claiming after failure", r)
	}
}

func TestForNZeroAndNegativeN(t *testing.T) {
	if err := ForN(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	if err := ForN(4, -5, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}
