// Package par is the pipeline's parallelism layer: a bounded worker
// pool for index-addressed fan-out and the context plumbing that
// carries the per-run worker budget from the caller (core.Config or
// the serve daemon) down into the analysis hot loops.
//
// Determinism contract: ForN runs fn(0..n-1) exactly once each, with
// every result written to a caller-owned, index-addressed slot, so the
// output of a parallel run is identical to a serial one whenever each
// fn(i) is itself deterministic. The worker count changes only wall
// time, never results.
//
// Composition contract: nothing in this package spawns goroutines
// beyond the requested worker budget, and the budget flows through the
// context (WithWorkers/FromContext), so an outer admission controller
// — e.g. the serve daemon's bounded-concurrency semaphore — caps
// process-wide parallelism at MaxInFlight × workers by construction
// instead of each request fanning out to GOMAXPROCS.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ctxKey carries the worker budget through a context.
type ctxKey struct{}

// WithWorkers returns a context carrying the worker budget n for
// downstream ForN calls (0 = GOMAXPROCS at use time, <0 = serial).
func WithWorkers(ctx context.Context, n int) context.Context {
	return context.WithValue(ctx, ctxKey{}, n)
}

// FromContext returns the worker budget carried by ctx, or 0 (meaning
// "resolver default", i.e. GOMAXPROCS) when none was set.
func FromContext(ctx context.Context) int {
	n, _ := ctx.Value(ctxKey{}).(int)
	return n
}

// Resolve maps a Workers knob to an effective worker count: 0 means
// GOMAXPROCS, negative means serial, and positive values pass through.
func Resolve(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// Workers resolves the effective worker count for ctx: the context's
// budget if one was set, GOMAXPROCS otherwise.
func Workers(ctx context.Context) int {
	return Resolve(FromContext(ctx))
}

// ForN runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the first error (by completion order; all
// workers stop claiming new indices once any fn fails). With workers
// <= 1 or n <= 1 it degrades to a plain loop on the calling goroutine
// — the serial reference path the equivalence tests compare against.
//
// fn is responsible for its own cancellation checks (so callers
// control check granularity and error wording); a context to check
// travels into fn as a closure, not through ForN.
func ForN(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
