package ccdac

// Version identifies the build. It is "dev" for plain `go build` and
// is stamped by the Makefile via
//
//	go build -ldflags "-X ccdac.Version=$(git describe --tags --always --dirty)"
//
// The serve daemon exposes it as the ccdac_build_info metric and the
// /healthz version field; the CLIs print it under -version.
var Version = "dev"
