// Saradc: the paper's motivating system — a charge-redistribution SAR
// ADC built on a generated capacitor array. For each placement style
// this example runs the full layout flow, builds a behavioral SAR ADC
// from the (mismatched) capacitor values and the extracted C^TS, and
// reports the system-level numbers an ADC designer quotes: static
// INL/DNL of the converter, ENOB from full-scale sine quantization,
// and the maximum sample rate the array's settling time permits.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ccdac/internal/core"
	"ccdac/internal/place"
	"ccdac/internal/sar"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

func main() {
	bits := flag.Int("bits", 8, "ADC resolution")
	flag.Parse()

	t := tech.FinFET12()
	fmt.Printf("%d-bit SAR ADC on generated capacitor arrays (%s)\n\n", *bits, t.Name)
	fmt.Printf("%-18s %10s %10s %8s %14s\n",
		"array style", "|DNL| LSB", "|INL| LSB", "ENOB", "max rate MS/s")

	styles := []struct {
		name  string
		style place.Style
		par   int
	}{
		{"spiral", place.Spiral, 2},
		{"block-chessboard", place.BlockChessboard, 2},
		{"chessboard", place.Chessboard, 1},
	}
	for _, s := range styles {
		res, err := core.Run(core.Config{
			Bits: *bits, Style: s.style, MaxParallel: s.par, SkipNL: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		an, err := variation.Analyze(res.Placement, res.Layout.CellCenter, t, math.Pi/4)
		if err != nil {
			log.Fatal(err)
		}
		// Worst static NL over correlated random-mismatch samples
		// (gradient shifts included), plus the median ENOB.
		shifts, err := variation.MonteCarlo(res.Placement, res.Layout.CellCenter, t, an, 20, 1)
		if err != nil {
			log.Fatal(err)
		}
		worstDNL, worstINL, sumENOB := 0.0, 0.0, 0.0
		for _, sh := range shifts {
			adc, err := sar.NewFromShifts(an, sh, res.Electrical.CTSfF, t.VRef)
			if err != nil {
				log.Fatal(err)
			}
			dnl, inl := adc.StaticNL()
			worstDNL = math.Max(worstDNL, dnl)
			worstINL = math.Max(worstINL, inl)
			sumENOB += sar.ENOB(adc.SNDR(2048))
		}
		rate := sar.MaxSampleRateHz(*bits, res.Electrical.Tau())
		fmt.Printf("%-18s %10.4f %10.4f %8.2f %14.1f\n",
			s.name, worstDNL, worstINL, sumENOB/float64(len(shifts)), rate/1e6)
	}

	fmt.Println("\nThe spiral array converts fastest; the chessboard array converts most")
	fmt.Println("accurately; the block chessboard balances both — the paper's tradeoff,")
	fmt.Println("seen from the ADC system level.")
}
