// Tradeoff: the scenario from the paper's introduction — a designer
// picking a capacitor-array layout style for a high-resolution DAC must
// trade switching speed (3dB frequency) against matching (INL/DNL).
// This example sweeps all four methods at a chosen resolution and
// prints the comparison the paper's Table II makes, plus a simple
// recommendation rule.
package main

import (
	"flag"
	"fmt"
	"log"

	"ccdac"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution")
	parallel := flag.Int("parallel", 2, "parallel wires for spiral/BC flows")
	flag.Parse()

	type row struct {
		name string
		res  *ccdac.Result
	}
	var rows []row

	if *bits%2 == 0 {
		annealed, err := ccdac.Generate(ccdac.Config{Bits: *bits, Style: ccdac.Annealed})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{"annealed [1]", annealed})
	} else {
		fmt.Printf("(annealed [1] baseline skipped: no odd-bit support, as in the paper)\n")
	}

	cb, err := ccdac.Generate(ccdac.Config{Bits: *bits, Style: ccdac.Chessboard})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"chessboard [7]", cb})

	sp, err := ccdac.Generate(ccdac.Config{Bits: *bits, Style: ccdac.Spiral, MaxParallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"spiral (S)", sp})

	bc, all, err := ccdac.GenerateBestBC(ccdac.Config{Bits: *bits, MaxParallel: *parallel})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{
		fmt.Sprintf("best BC (core=%d, g=%d)", bc.Config.CoreBits, bc.Config.BlockCells), bc,
	})

	fmt.Printf("\n%d-bit DAC capacitor array tradeoff (%d BC structures swept)\n\n", *bits, len(all))
	fmt.Printf("%-24s %10s %10s %10s %8s %10s\n",
		"method", "area um^2", "f3dB MHz", "|DNL| LSB", "|INL|", "via cuts")
	for _, r := range rows {
		m := r.res.Metrics
		fmt.Printf("%-24s %10.0f %10.1f %10.3f %8.3f %10d\n",
			r.name, m.AreaUm2, m.F3dBHz/1e6, m.MaxAbsDNL, m.MaxAbsINL, m.ViaCuts)
	}

	// The paper's guidance: spiral when speed rules and mismatch fits
	// the budget; chessboard when accuracy rules; BC as the compromise.
	fmt.Println("\nrecommendation:")
	budget := 0.25 // LSB
	switch {
	case sp.Metrics.MaxAbsDNL < budget && sp.Metrics.MaxAbsINL < budget:
		fmt.Printf("  spiral: fastest (%.0f MHz) and within the %.2f LSB budget\n",
			sp.Metrics.F3dBHz/1e6, budget)
	case bc.Metrics.MaxAbsDNL < budget && bc.Metrics.MaxAbsINL < budget:
		fmt.Printf("  block chessboard: spiral exceeds the %.2f LSB budget; BC keeps %.0f MHz\n",
			budget, bc.Metrics.F3dBHz/1e6)
	default:
		fmt.Printf("  chessboard: only the maximum-dispersion layout meets the %.2f LSB budget\n", budget)
	}
}
