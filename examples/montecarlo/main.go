// Montecarlo: cross-check the paper's closed-form 3σ INL/DNL model
// against a correlated Monte-Carlo simulation. Unit-capacitor
// mismatch is sampled from the spatial-correlation model (Eqs. 4-6)
// via a Cholesky factor of the full unit-cell covariance matrix, each
// sample's DAC transfer is swept over all codes, and the resulting
// worst-case INL/DNL distribution is compared with the 3σ prediction.
//
// This example drives the internal analysis engines directly, showing
// how the substrate packages compose beneath the public facade.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"ccdac/internal/dacmodel"
	"ccdac/internal/place"
	"ccdac/internal/tech"
	"ccdac/internal/variation"
)

func main() {
	bits := flag.Int("bits", 6, "DAC resolution (keep small: the unit covariance is (2^N)^2)")
	samples := flag.Int("samples", 500, "Monte-Carlo sample count")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	m, err := place.NewSpiral(*bits)
	if err != nil {
		log.Fatal(err)
	}
	t := tech.FinFET12()
	pos := variation.GridPositioner(t)

	theta := math.Pi / 4
	a, err := variation.Analyze(m, pos, t, theta)
	if err != nil {
		log.Fatal(err)
	}
	closed, err := dacmodel.Nonlinearity(a, dacmodel.Parasitics{}, t.VRef)
	if err != nil {
		log.Fatal(err)
	}

	shifts, err := variation.MonteCarlo(m, pos, t, a, *samples, *seed)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := dacmodel.MonteCarloNL(a, shifts, dacmodel.Parasitics{}, t.VRef)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d-bit spiral array, %d correlated Monte-Carlo samples\n\n", *bits, *samples)
	fmt.Printf("%-28s %10s %10s\n", "", "|INL| LSB", "|DNL| LSB")
	fmt.Printf("%-28s %10.4f %10.4f\n", "closed-form 3-sigma model",
		closed.MaxAbsINL, closed.MaxAbsDNL)
	for _, q := range []float64{0.50, 0.90, 0.99} {
		fmt.Printf("%-28s %10.4f %10.4f\n",
			fmt.Sprintf("Monte-Carlo p%02.0f", q*100),
			dacmodel.Quantile(mc, q, true), dacmodel.Quantile(mc, q, false))
	}
	fmt.Println("\nThe 3-sigma model upper-bounds the Monte-Carlo bulk, as the paper's")
	fmt.Println("worst-case methodology intends (Sec. III-A).")
}
