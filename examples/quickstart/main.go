// Quickstart: generate a routed common-centroid capacitor array for an
// 8-bit charge-scaling DAC with the paper's spiral placement and
// parallel-wire routing, print its metrics, and write an SVG view.
package main

import (
	"fmt"
	"log"

	"ccdac"
	"ccdac/internal/store"
)

func main() {
	res, err := ccdac.Generate(ccdac.Config{
		Bits:        8,
		Style:       ccdac.Spiral,
		MaxParallel: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("8-bit charge-scaling DAC, spiral common-centroid array")
	fmt.Printf("  area:             %.0f um^2\n", m.AreaUm2)
	fmt.Printf("  3dB frequency:    %.0f MHz (limited by C_%d)\n", m.F3dBHz/1e6, m.CriticalBit)
	fmt.Printf("  worst |DNL|:      %.3f LSB\n", m.MaxAbsDNL)
	fmt.Printf("  worst |INL|:      %.3f LSB\n", m.MaxAbsINL)
	fmt.Printf("  vias:             %d cuts\n", m.ViaCuts)
	fmt.Printf("  wirelength:       %.0f um\n", m.WirelengthUm)
	fmt.Printf("  place+route time: %.1f ms\n", (m.PlaceSeconds+m.RouteSeconds)*1000)

	fmt.Println("\nPlacement (top row first; numbers are capacitor indices):")
	fmt.Print(res.PlacementASCII())

	if err := store.AtomicWriteFile("quickstart_layout.svg", []byte(res.SVGLayout("8-bit spiral")), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote quickstart_layout.svg")
}
