// Parallelwires: reproduce the paper's Fig. 6(a) experiment — in FinFET
// nodes, wire widths are quantized, so resistance on critical bits is
// reduced with k parallel wires (wire R / k, via arrays R / k^2, wire
// C x k). This example sweeps k and prints the 3dB-frequency
// improvement factor, showing the 2x-4x gain at k=2 and the
// diminishing returns beyond.
package main

import (
	"flag"
	"fmt"
	"log"

	"ccdac"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution")
	maxK := flag.Int("maxk", 6, "largest parallel-wire count")
	flag.Parse()

	base := 0.0
	fmt.Printf("spiral %d-bit: f3dB vs parallel wires on critical bits\n\n", *bits)
	fmt.Printf("%3s %12s %18s %14s\n", "k", "f3dB MHz", "improvement vs k=1", "critical bit")
	for k := 1; k <= *maxK; k++ {
		res, err := ccdac.Generate(ccdac.Config{
			Bits:             *bits,
			Style:            ccdac.Spiral,
			MaxParallel:      k,
			SkipNonlinearity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		f := res.Metrics.F3dBHz
		if k == 1 {
			base = f
		}
		fmt.Printf("%3d %12.1f %18.2f %14d\n", k, f/1e6, f/base, res.Metrics.CriticalBit)
	}
	fmt.Println("\nThe k=2 gain sits between 2x (wire-dominated) and 4x (via-dominated);")
	fmt.Println("added wire capacitance gives diminishing returns at larger k (paper Fig 6a).")
}
