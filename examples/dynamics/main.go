// Dynamics: the time-domain face of the paper's f3dB metric. Each
// bit of a generated array settles through its own charging network;
// mismatched settling speeds make the DAC output glitch at carry
// transitions. This example simulates code transitions on the
// extracted per-bit time constants and reports the worst glitch
// impulse and the settling-limited update rate for each placement
// style.
package main

import (
	"flag"
	"fmt"
	"log"

	"ccdac/internal/ccmatrix"
	"ccdac/internal/core"
	"ccdac/internal/dacsim"
	"ccdac/internal/place"
	"ccdac/internal/tech"
)

func main() {
	bits := flag.Int("bits", 8, "DAC resolution")
	flag.Parse()

	t := tech.FinFET12()
	fmt.Printf("%d-bit DAC dynamic behavior from extracted per-bit settling constants\n\n", *bits)
	fmt.Printf("%-18s %16s %14s %16s\n",
		"array style", "worst glitch", "at code", "update rate MS/s")

	styles := []struct {
		name  string
		style place.Style
		par   int
	}{
		{"spiral", place.Spiral, 2},
		{"block-chessboard", place.BlockChessboard, 2},
		{"chessboard", place.Chessboard, 1},
	}
	for _, s := range styles {
		res, err := core.Run(core.Config{Bits: *bits, Style: s.style, MaxParallel: s.par, SkipNL: true})
		if err != nil {
			log.Fatal(err)
		}
		m, err := dacsim.FromExtract(res.Electrical, ccmatrix.UnitCounts(*bits), t.Unit.CfF, t.VRef)
		if err != nil {
			log.Fatal(err)
		}
		code, glitch, err := m.WorstGlitch()
		if err != nil {
			log.Fatal(err)
		}
		rate, err := m.MaxUpdateRateHz()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %13.3g Vs %6d->%-6d %16.1f\n",
			s.name, glitch, code, code+1, rate/1e6)
	}
	fmt.Println("\nSlow, unevenly-settling bits (the chessboard's long trunks and via")
	fmt.Println("chains) both glitch harder at carries and cap the update rate — the")
	fmt.Println("dynamic consequence of the paper's f3dB argument.")
}
