// Layoutgallery: render every placement style the library offers as
// SVG (placement view and routed view), the artifacts behind the
// paper's Figs. 2-5. Run it and open the SVGs in a browser.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ccdac"
	"ccdac/internal/store"
)

func main() {
	bits := flag.Int("bits", 6, "DAC resolution")
	out := flag.String("out", "gallery", "output directory")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, style := range ccdac.Styles() {
		if style == ccdac.Annealed && *bits%2 != 0 {
			fmt.Printf("skipping %s (odd bit count)\n", style)
			continue
		}
		res, err := ccdac.Generate(ccdac.Config{
			Bits:             *bits,
			Style:            style,
			MaxParallel:      2,
			SkipNonlinearity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := string(style)
		title := fmt.Sprintf("%d-bit %s", *bits, name)
		writeFile(*out, name+"_placement.svg", res.SVGPlacement(title+" placement"))
		writeFile(*out, name+"_routed.svg", res.SVGLayout(title+" routed"))
		fmt.Printf("%-17s f3dB %8.1f MHz, %4d via cuts, %6.0f um wire\n",
			style, res.Metrics.F3dBHz/1e6, res.Metrics.ViaCuts, res.Metrics.WirelengthUm)
	}

	// Block-chessboard granularity strip (Fig. 4).
	for _, g := range []int{1, 2, 4, 8} {
		res, err := ccdac.Generate(ccdac.Config{
			Bits: *bits, Style: ccdac.BlockChessboard,
			CoreBits: 4, BlockCells: g, SkipNonlinearity: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		writeFile(*out, fmt.Sprintf("bc_granularity_g%d.svg", g),
			res.SVGPlacement(fmt.Sprintf("%d-bit BC, blocks of %d", *bits, g)))
	}
	fmt.Println("gallery written to", *out)
}

func writeFile(dir, name, content string) {
	if err := store.AtomicWriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		log.Fatal(err)
	}
}
