package ccdac

import (
	"encoding/json"
	"testing"

	"ccdac/internal/memo"
)

// resultPayload is the deterministic portion of a Result: everything
// except the wall-clock timing fields, which legitimately differ
// between a computed and a cached run.
func resultPayload(t *testing.T, r *Result) string {
	t.Helper()
	m := r.Metrics
	m.PlaceSeconds, m.RouteSeconds = 0, 0
	data, err := json.Marshal(struct {
		Metrics  Metrics
		Warnings []string
	}{m, r.Warnings})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMemoBitwiseEquivalence is the caching correctness bar: for fixed
// seeds, a memoized run must produce byte-identical results to an
// unmemoized one — both when it populates the stage caches and when it
// is served entirely from them, and even when unrelated configurations
// share intermediates in between.
func TestMemoBitwiseEquivalence(t *testing.T) {
	configs := []Config{
		{Bits: 6, MaxParallel: 2},
		{Bits: 7, Style: Chessboard},
		{Bits: 6, Style: Annealed, AnnealSeed: 42, AnnealMoves: 2000},
		{Bits: 5, Style: BlockChessboard, CoreBits: 2, BlockCells: 2, SkipNonlinearity: true},
	}
	memo.PurgeAll()
	for _, cfg := range configs {
		cold, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%+v: cold run: %v", cfg, err)
		}
		want := resultPayload(t, cold)

		warmCfg := cfg
		warmCfg.Memo = true
		first, err := Generate(warmCfg) // populates the stage caches
		if err != nil {
			t.Fatalf("%+v: first memo run: %v", cfg, err)
		}
		if got := resultPayload(t, first); got != want {
			t.Errorf("%+v: cache-populating run differs from cold run:\ncold: %s\nmemo: %s", cfg, want, got)
		}

		// An overlapping configuration reuses the cached placement,
		// layout and extraction; if any stage mutated a shared cached
		// value, the replayed run below would see the corruption.
		overlap := warmCfg
		if overlap.SkipNonlinearity {
			overlap.SkipNonlinearity = false
			overlap.ThetaSteps = 4
		} else {
			overlap.ThetaSteps = 16
		}
		if _, err := Generate(overlap); err != nil {
			t.Fatalf("%+v: overlapping memo run: %v", cfg, err)
		}

		second, err := Generate(warmCfg) // now served from the caches
		if err != nil {
			t.Fatalf("%+v: second memo run: %v", cfg, err)
		}
		if got := resultPayload(t, second); got != want {
			t.Errorf("%+v: fully-cached run differs from cold run:\ncold: %s\nmemo: %s", cfg, want, got)
		}
	}
	memo.PurgeAll()
}
